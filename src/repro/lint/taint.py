"""Interprocedural key-taint: nondeterminism must not reach cache keys.

The per-file ``determinism`` rule bans wall-clock and stateful-RNG
*calls* in key-relevant scopes, and sets *lexically inside* a key
expression.  What it cannot see is propagation: a helper that returns
``time.time()``, assigned to a local, passed through two more calls,
and finally hashed.  Content-addressed caching breaks silently the
moment that happens — the same spec hashes differently per host or per
process, so every campaign re-runs (best case) or two hosts disagree
about what a key names (worst case).

This rule tracks taint from nondeterministic **sources**

* wall clock — ``time.time``/``monotonic``/``perf_counter`` (+ ``_ns``
  variants), ``datetime.now``/``utcnow``/``today``, and the sanctioned
  ``repro.utils.clock`` helpers (fine for *metadata*, never for keys);
* stateful RNG — ``random.*``, ``np.random.<stateful>``, ``uuid.uuid4``;
* environment — ``os.environ`` / ``os.getenv``;
* process identity — ``os.getpid``/``getppid``/``uname``,
  ``socket.gethostname``, ``platform.node``, ``uuid.uuid1``;
* set iteration order — set literals/comprehensions, ``set()`` /
  ``frozenset()`` calls (salted per process);

through local assignments, returns of in-tree functions (via the
:mod:`.callgraph` call edges), and argument→parameter forwarding into
key **sinks**: ``stable_hash``, ``spec_hash``, ``key_fn``, and any
``*_key`` call.  Each finding carries the full source→sink chain so the
fix site is obvious from the report alone.

Precision notes (deliberate, matching the other rules' trade): tracking
is name-based and first-witness — one chain per sink argument, no alias
or attribute-field sensitivity, and a call whose argument is tainted is
assumed to return a tainted value unless it is a known cleanser
(``sorted`` erases set order; ``len``/``bool``/friends erase value
taint).  Sources appearing *lexically inside* a sink argument stay the
``determinism`` rule's findings; this rule only reports flows with at
least one propagation step, so the two never double-report one line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .callgraph import (
    MODULE_BODY,
    FunctionInfo,
    ProgramIndex,
    attr_chain,
    program_index_for_root,
)
from .context import SourceModule
from .findings import Finding
from .rules import register_rule

__all__ = ["analyze_index", "check_key_taint"]

_NP_ROOTS = {"np", "numpy"}
_NP_RANDOM_STATEFUL = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "bytes", "uniform", "normal", "standard_normal", "choice",
    "shuffle", "permutation", "get_state", "set_state",
}
_WALL_CLOCK_TAILS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}
_DATETIME_TAILS = {"now", "utcnow", "today"}
_CLOCK_HELPERS = {"wall_time_unix", "utc_now_iso"}

#: Callables whose result is order- and value-independent of the input.
_FULL_CLEANSERS = {"len", "bool", "isinstance", "type", "callable", "id"}
#: Callables that erase set-iteration-order taint but keep value taint.
_ORDER_CLEANSERS = {"sorted", "min", "max", "sum", "any", "all"}

_SINK_TAILS = {"stable_hash", "spec_hash", "key_fn"}
_SINK_SUFFIX = "_key"

#: Direct (zero-hop) findings of these kinds are the per-file
#: ``determinism`` rule's territory — skipping them here keeps one
#: violation one finding.
_LEXICAL_KINDS = {"wall-clock", "rng", "set-order"}

_KIND_LABEL = {
    "wall-clock": "wall-clock",
    "rng": "stateful-RNG",
    "environment": "environment",
    "process-identity": "process-identity",
    "set-order": "set-iteration-order",
}

_PARAM_KIND = "<param>"
_MAX_ROUNDS = 10


def _source_kind(chain: List[str]) -> Optional[str]:
    tail = chain[-1]
    if chain[0] == "time" and tail in _WALL_CLOCK_TAILS:
        return "wall-clock"
    if tail in _DATETIME_TAILS and (
        "datetime" in chain[:-1] or "date" in chain[:-1]
    ):
        return "wall-clock"
    if tail in _CLOCK_HELPERS:
        return "wall-clock"
    if chain[0] == "random" and len(chain) == 2:
        return "rng"
    if (
        len(chain) == 3
        and chain[0] in _NP_ROOTS
        and chain[1] == "random"
        and chain[2] in _NP_RANDOM_STATEFUL
    ):
        return "rng"
    if chain[0] == "uuid" and tail == "uuid4":
        return "rng"
    if chain[0] == "uuid" and tail == "uuid1":
        return "process-identity"
    if chain[0] == "os" and ("environ" in chain or tail == "getenv"):
        return "environment"
    if chain[0] == "os" and tail in ("getpid", "getppid", "uname"):
        return "process-identity"
    if tail == "gethostname" or chain == ["platform", "node"]:
        return "process-identity"
    return None


def _is_sink_tail(tail: str) -> bool:
    return tail in _SINK_TAILS or tail.endswith(_SINK_SUFFIX)


@dataclass(frozen=True)
class Taint:
    """A tracked value: what kind of nondeterminism, and the witness
    chain of steps that carried it here."""

    kind: str
    steps: Tuple[str, ...]
    direct: bool  # True while no name binding / call edge was crossed

    def via(self, step: str) -> "Taint":
        return Taint(self.kind, self.steps + (step,), False)

    def indirect(self) -> "Taint":
        return self if not self.direct else Taint(self.kind, self.steps, False)


@dataclass(frozen=True)
class RawFinding:
    """A taint finding before it is bound to a SourceModule."""

    scope_path: str
    line: int
    col: int
    message: str
    chain: Tuple[str, ...]


def _ordered_stmts(root: ast.AST) -> List[ast.stmt]:
    """Statements of ``root``'s own body in source order, not descending
    into nested function definitions (classes are transparent)."""
    out: List[ast.stmt] = []

    def rec(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.stmt):
                out.append(child)
            rec(child)

    rec(root)
    return out


class _Flow:
    """One pass of name-based taint flow over one function body."""

    def __init__(
        self,
        index: ProgramIndex,
        info: FunctionInfo,
        return_taints: Dict[str, Taint],
        summaries: Dict[str, Dict[str, Tuple[str, ...]]],
        mark_params: bool,
    ) -> None:
        self.index = index
        self.info = info
        self.return_taints = return_taints
        self.summaries = summaries
        self.tainted: Dict[str, Taint] = {}
        self.return_taint: Optional[Taint] = None
        self.findings: List[RawFinding] = []
        self.param_summary: Dict[str, Tuple[str, ...]] = {}
        self.sites = {
            (site.line, site.col, site.raw): site for site in info.calls
        }
        if mark_params:
            for param in info.params:
                if param in ("self", "cls"):
                    continue
                self.tainted[param] = Taint(f"{_PARAM_KIND}{param}", (), False)

    # -- helpers ------------------------------------------------------------

    def _step(self, text: str, node: ast.AST) -> str:
        return f"{text} ({self.info.scope_path}:{node.lineno})"

    def _site_for(self, call: ast.Call):
        chain = attr_chain(call.func)
        if chain is None:
            return None
        return self.sites.get((call.lineno, call.col_offset, ".".join(chain)))

    def _arg_param_pairs(self, call: ast.Call, callee: FunctionInfo, implicit_self: bool):
        """(param name, argument expr) pairs for a resolved call."""
        offset = 1 if implicit_self and callee.params[:1] in (("self",), ("cls",)) else 0
        pairs = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            idx = offset + i
            if idx < len(callee.params):
                pairs.append((callee.params[idx], arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in callee.params:
                pairs.append((kw.arg, kw.value))
        return pairs

    # -- expression taint ---------------------------------------------------

    def expr_taint(self, expr: ast.AST) -> Optional[Taint]:
        if isinstance(expr, ast.Call):
            return self._call_taint(expr)
        if isinstance(expr, ast.Name):
            return self.tainted.get(expr.id)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return Taint("set-order", (self._step("set literal", expr),), True)
        if isinstance(expr, ast.Attribute):
            chain = attr_chain(expr)
            if chain and chain[0] == "os" and chain[-1] == "environ":
                return Taint(
                    "environment", (self._step("`os.environ`", expr),), True
                )
            return self.expr_taint(expr.value)
        if isinstance(expr, ast.Lambda):
            return None
        for child in ast.iter_child_nodes(expr):
            taint = self.expr_taint(child)
            if taint is not None:
                return taint
        return None

    def arg_taints(self, arg: ast.AST) -> List[Taint]:
        """All taints reaching one sink/forwarded argument, one witness
        per kind.  ``expr_taint`` is first-witness, so a dict mixing a
        clean spec and a tainted salt would otherwise report whichever
        the traversal met first; here every subexpression gets a look."""
        taints: List[Taint] = []
        seen = set()
        stack: List[ast.AST] = [arg]
        while stack:
            node = stack.pop(0)
            taint = self.expr_taint(node)
            if taint is not None and taint.kind not in seen:
                seen.add(taint.kind)
                taints.append(taint)
            if not isinstance(node, ast.Lambda):
                stack.extend(
                    child
                    for child in ast.iter_child_nodes(node)
                    if isinstance(child, ast.expr)
                )
        return taints

    def _call_taint(self, call: ast.Call) -> Optional[Taint]:
        chain = attr_chain(call.func)
        args = list(call.args) + [kw.value for kw in call.keywords]
        if chain is not None and len(chain) == 1:
            if chain[0] in _FULL_CLEANSERS:
                return None
            if chain[0] in _ORDER_CLEANSERS:
                for arg in args:
                    taint = self.expr_taint(arg)
                    if taint is not None and taint.kind != "set-order":
                        return taint.indirect()
                return None
            if chain[0] in ("set", "frozenset"):
                return Taint(
                    "set-order", (self._step(f"`{chain[0]}(...)`", call),), True
                )
        if chain is not None:
            kind = _source_kind(chain)
            if kind is not None:
                dotted = ".".join(chain)
                return Taint(kind, (self._step(f"`{dotted}()`", call),), True)
        site = self._site_for(call)
        if site is not None and site.callee in self.return_taints:
            callee = self.index.functions[site.callee]
            base = self.return_taints[site.callee]
            return base.via(self._step(f"returned by `{callee.display}()`", call))
        # Unknown or un-summarized callee: a tainted argument is assumed
        # to taint the result (str(), json.dumps(), wrappers, ...).
        for arg in args:
            taint = self.expr_taint(arg)
            if taint is not None:
                return taint.indirect()
        return None

    # -- statement flow -----------------------------------------------------

    def _taint_targets(self, targets: List[ast.expr], taint: Taint) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self.tainted[target.id] = taint
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._taint_targets(list(target.elts), taint)
            elif isinstance(target, ast.Starred):
                self._taint_targets([target.value], taint)

    def bind(self) -> None:
        stmts = _ordered_stmts(self.info.node)
        for _ in range(2):  # second pass stabilizes loop-carried flows
            for stmt in stmts:
                self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.expr_taint(stmt.value)
            if taint is not None:
                self._taint_targets(stmt.targets, taint.indirect())
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self.expr_taint(stmt.value)
            if taint is not None:
                self._taint_targets([stmt.target], taint.indirect())
        elif isinstance(stmt, ast.AugAssign):
            taint = self.expr_taint(stmt.value)
            if taint is not None:
                self._taint_targets([stmt.target], taint.indirect())
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.expr_taint(stmt.iter)
            if taint is not None:
                # Iterating a salted-order container makes the loop
                # variable's *sequence* nondeterministic too.
                self._taint_targets([stmt.target], taint.indirect())
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    taint = self.expr_taint(item.context_expr)
                    if taint is not None:
                        self._taint_targets(
                            [item.optional_vars], taint.indirect()
                        )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            taint = self.expr_taint(stmt.value)
            if taint is not None and self.return_taint is None:
                self.return_taint = taint.indirect()

    # -- sinks --------------------------------------------------------------

    def scan_sinks(self) -> None:
        from .callgraph import _own_statements_and_exprs

        for node in _own_statements_and_exprs(self.info.node):
            if isinstance(node, ast.Call):
                self._check_call(node)

    def _check_call(self, call: ast.Call) -> None:
        chain = attr_chain(call.func)
        tail = chain[-1] if chain else None
        args = list(call.args) + [kw.value for kw in call.keywords]
        if tail is not None and _is_sink_tail(tail):
            for arg in args:
                for taint in self.arg_taints(arg):
                    if taint.kind.startswith(_PARAM_KIND):
                        # Records a summary hop, not a local finding:
                        # the real source lives in some caller.
                        param = taint.kind[len(_PARAM_KIND):]
                        if param not in self.param_summary:
                            self.param_summary[param] = taint.steps + (
                                self._step(f"feeds `{tail}(...)`", call),
                            )
                        continue
                    if taint.direct and taint.kind in _LEXICAL_KINDS:
                        continue  # the determinism rule owns zero-hop cases
                    self._emit(call, tail, taint)
            return
        site = self._site_for(call)
        if site is None or site.callee is None:
            return
        summary = self.summaries.get(site.callee)
        if not summary:
            return
        callee = self.index.functions[site.callee]
        for param, arg in self._arg_param_pairs(call, callee, site.implicit_self):
            hops = summary.get(param)
            if hops is None:
                continue
            forward = self._step(
                f"passed to `{callee.display}({param}=…)`", call
            )
            for taint in self.arg_taints(arg):
                if taint.kind.startswith(_PARAM_KIND):
                    own = taint.kind[len(_PARAM_KIND):]
                    if own not in self.param_summary:
                        self.param_summary[own] = (
                            taint.steps + (forward,) + hops
                        )
                    continue
                sink_tail = (
                    hops[-1].split("`")[1].split("(")[0] if hops else "key"
                )
                chained = Taint(
                    taint.kind, taint.steps + (forward,) + hops, False
                )
                self._emit(call, sink_tail, chained, steps_complete=True)

    def _emit(
        self,
        call: ast.Call,
        tail: str,
        taint: Taint,
        steps_complete: bool = False,
    ) -> None:
        steps = taint.steps
        if not steps_complete:
            steps = steps + (self._step(f"feeds `{tail}(...)`", call),)
        label = _KIND_LABEL.get(taint.kind, taint.kind)
        message = (
            f"{label} value flows into cache key `{tail}(...)`: "
            + " → ".join(steps)
            + "; keys must be pure functions of the spec — carry runtime "
            "state in artifacts/metadata and bump Stage.version for "
            "behaviour changes"
        )
        self.findings.append(
            RawFinding(
                scope_path=self.info.scope_path,
                line=call.lineno,
                col=call.col_offset,
                message=message,
                chain=steps,
            )
        )


def _run_flow(
    index: ProgramIndex,
    info: FunctionInfo,
    return_taints: Dict[str, Taint],
    summaries: Dict[str, Dict[str, Tuple[str, ...]]],
) -> _Flow:
    flow = _Flow(index, info, return_taints, summaries, mark_params=True)
    flow.bind()
    flow.scan_sinks()
    return flow


def analyze_index(index: ProgramIndex) -> Dict[str, List[RawFinding]]:
    """All key-taint findings for one program, grouped by scope path.

    Runs two interleaved fixpoints — which functions *return* taint, and
    which function *parameters* reach a sink — then a final pass that
    reports real source→sink flows.  Cached on the index, so N linted
    files cost one analysis.
    """
    if index.taint_cache is not None:
        return index.taint_cache

    return_taints: Dict[str, Taint] = {}
    summaries: Dict[str, Dict[str, Tuple[str, ...]]] = {}
    functions = sorted(index.functions.values(), key=lambda f: f.qname)

    for _ in range(_MAX_ROUNDS):
        changed = False
        for info in functions:
            flow = _run_flow(index, info, return_taints, summaries)
            rt = flow.return_taint
            if rt is not None and rt.kind.startswith(_PARAM_KIND):
                rt = None  # identity-ish returns are handled as passthrough
            if rt is not None and return_taints.get(info.qname) != rt:
                return_taints[info.qname] = rt
                changed = True
            if flow.param_summary and summaries.get(info.qname) != flow.param_summary:
                summaries[info.qname] = dict(flow.param_summary)
                changed = True
        if not changed:
            break

    findings: Dict[str, List[RawFinding]] = {}
    for info in functions:
        flow = _run_flow(index, info, return_taints, summaries)
        for raw in flow.findings:
            findings.setdefault(raw.scope_path, []).append(raw)
    index.taint_cache = findings
    return findings


_TAINT_SCOPES = (
    "analysis/", "api/", "core/", "datasets/", "extensions/",
    "netsim/", "nn/", "obs/", "runtime/", "utils/", "lint/",
)


@register_rule(
    "key-taint",
    severity="error",
    description=(
        "interprocedural flow of wall-clock/RNG/environment/host/set-order "
        "values into stable_hash/key functions, with the full source→sink "
        "call chain"
    ),
    scopes=_TAINT_SCOPES,
)
def check_key_taint(module: SourceModule) -> List[Finding]:
    index = program_index_for_root(module.root)
    per_scope = analyze_index(index)
    return [
        module.finding(
            (raw.line, raw.col), "key-taint", raw.message, chain=raw.chain
        )
        for raw in per_scope.get(module.scope_path, [])
    ]
