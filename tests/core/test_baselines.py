"""Tests for the Table 1 baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    delay_mse,
    evaluate_baselines,
    ewma_predictions,
    last_observed_predictions,
    mct_log_mse,
)
from repro.datasets.windows import WindowDataset


def synthetic_dataset(n=20, window=8):
    """Hand-built windows with known values."""
    rng = np.random.default_rng(0)
    features = np.zeros((n, window, 3))
    features[:, :, 2] = rng.uniform(0.01, 0.1, size=(n, window))
    receiver = np.zeros((n, window), dtype=np.int64)
    delay_target = features[:, -1, 2].copy()
    mct_seq = np.full((n, window), np.nan)
    end_seq = np.zeros((n, window), dtype=bool)
    # Message ends at positions 2 and 5 with known MCTs.
    mct_seq[:, 2] = 0.5
    end_seq[:, 2] = True
    mct_seq[:, 5] = 0.8
    end_seq[:, 5] = True
    mct_target = np.full(n, 0.7)
    message_size = np.full(n, 3000.0)
    return WindowDataset(
        features, receiver, delay_target, mct_target, message_size, mct_seq, end_seq
    )


class TestLastObserved:
    def test_delay_uses_second_to_last(self):
        ds = synthetic_dataset()
        predictions = last_observed_predictions(ds, "delay")
        assert np.allclose(predictions, ds.features[:, -2, 2])

    def test_mct_uses_latest_completed(self):
        ds = synthetic_dataset()
        predictions = last_observed_predictions(ds, "mct")
        assert np.allclose(predictions, 0.8)  # position 5 is latest

    def test_mct_fallback_to_median(self):
        ds = synthetic_dataset()
        ds.end_seq[:] = False  # no completed messages in any window
        predictions = last_observed_predictions(ds, "mct")
        finite = ds.mct_seq[np.isfinite(ds.mct_seq)]
        assert np.allclose(predictions, np.median(finite))

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            last_observed_predictions(synthetic_dataset(), "nonsense")


class TestEwma:
    def test_delay_alpha_one_equals_last_observed(self):
        ds = synthetic_dataset()
        assert np.allclose(
            ewma_predictions(ds, "delay", alpha=1.0),
            last_observed_predictions(ds, "delay"),
        )

    def test_delay_small_alpha_approaches_history_mean(self):
        ds = synthetic_dataset()
        ds.features[:, :, 2] = 0.05  # constant history
        assert np.allclose(ewma_predictions(ds, "delay", alpha=0.01), 0.05)

    def test_mct_combines_completions(self):
        ds = synthetic_dataset()
        predictions = ewma_predictions(ds, "mct", alpha=0.5)
        # EWMA over [0.5, 0.8] with alpha .5 → 0.65.
        assert np.allclose(predictions, 0.65)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ewma_predictions(synthetic_dataset(), "delay", alpha=0.0)


class TestMetrics:
    def test_delay_mse_perfect(self):
        ds = synthetic_dataset()
        assert delay_mse(ds.delay_target, ds) == 0.0

    def test_delay_mse_value(self):
        ds = synthetic_dataset()
        predictions = ds.delay_target + 0.01
        assert delay_mse(predictions, ds) == pytest.approx(1e-4)

    def test_mct_log_mse_perfect(self):
        ds = synthetic_dataset()
        assert mct_log_mse(ds.mct_target, ds) == pytest.approx(0.0)

    def test_mct_log_mse_skips_invalid_targets(self):
        ds = synthetic_dataset()
        ds.mct_target[0] = np.nan
        value = mct_log_mse(np.full(len(ds), 0.7), ds)
        assert np.isfinite(value)

    def test_mct_log_mse_floors_nonpositive_predictions(self):
        ds = synthetic_dataset()
        value = mct_log_mse(np.full(len(ds), -1.0), ds)
        assert np.isfinite(value)

    def test_mct_log_mse_all_invalid_raises(self):
        ds = synthetic_dataset()
        ds.mct_target[:] = np.nan
        with pytest.raises(ValueError):
            mct_log_mse(np.zeros(len(ds)), ds)


class TestEvaluateBaselines:
    def test_structure(self, smoke_bundle):
        results = evaluate_baselines(smoke_bundle.test)
        assert set(results) == {"last_observed", "ewma"}
        for row in results.values():
            assert row["delay_mse"] >= 0
            assert row["mct_log_mse"] >= 0

    def test_on_real_trace_last_observed_beats_ewma_for_delay(self, smoke_bundle):
        """Queueing delays are highly autocorrelated, so the last
        observation is a better predictor than a long average."""
        results = evaluate_baselines(smoke_bundle.test)
        assert results["last_observed"]["delay_mse"] <= results["ewma"]["delay_mse"]
