"""The §5 extension workloads as registered pipeline stages.

Registration lives in this separate module (imported last by
:mod:`repro.extensions`) so that :mod:`repro.extensions.federated` and
:mod:`repro.extensions.continual` keep a core-only import surface:
``repro.api`` re-exports them, so an extension module importing
``repro.api.*`` at its top level would create a circular import for
anyone importing the extensions package first.

Each stage's parameter defaults live in one module-level dictionary
consulted by *both* its ``key_fn`` and its ``run`` body — the cache key
and the computation can never disagree about a default.

* ``federated_pretrain`` — FedAvg pre-training over private client
  datasets; the collective model is stored as a regular pre-trained
  checkpoint (``Experiment``/``Predictor`` machinery can serve it), with
  per-round telemetry in its training history.
* ``drift_monitor`` — the Page-Hinkley staleness check of the deployed
  pre-trained model on this spec's scenario, planned with a real
  ``pretrain`` dependency and cached as a JSON evaluation.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.api.hashing import stable_hash
from repro.api.stages import register_stage, versioned_key
from repro.core.pretrain import PretrainResult
from repro.datasets.generation import generate_dataset
from repro.extensions.continual import DriftMonitor, DriftReport
from repro.extensions.federated import FederatedTrainer
from repro.netsim.scenarios import ScenarioKind
from repro.nn.trainer import TrainingHistory

__all__ = ["FEDERATED_DEFAULTS", "DRIFT_DEFAULTS"]


# -- federated_pretrain ------------------------------------------------------------

#: Stage parameters (set via ExperimentSpec.stage_params["federated_pretrain"]):
#: private organisations simulated, FedAvg rounds (settings.epochs =
#: local epochs per round) and simulation runs per client dataset.
FEDERATED_DEFAULTS = {"n_clients": 3, "rounds": 2, "client_runs": 1}


def _federated_params(params: dict) -> tuple[int, int, int]:
    return (
        int(params.get("n_clients", FEDERATED_DEFAULTS["n_clients"])),
        int(params.get("rounds", FEDERATED_DEFAULTS["rounds"])),
        int(params.get("client_runs", FEDERATED_DEFAULTS["client_runs"])),
    )


def _client_scenario(base, offset: int):
    """A client's private vantage point: the spec's pre-training
    topology under an independent seed (derived from the spec seed so
    campaigns with different seeds never share clients)."""
    return replace(base, seed=1000 * base.seed + offset)


def _federated_key(spec, params: dict) -> str:
    scale = spec.to_scale()
    n_clients, rounds, client_runs = _federated_params(params)
    return stable_hash(
        {
            "artifact": "federated_pretrain",
            "scenario": spec.scenario_config(ScenarioKind.PRETRAIN),
            "window": scale.window,
            "model": scale.model_config(),
            "settings": scale.pretrain_settings,
            "n_clients": n_clients,
            "rounds": rounds,
            "client_runs": client_runs,
        }
    )


@register_stage(
    "federated_pretrain",
    version=1,
    kind="checkpoints",
    key_fn=_federated_key,
    description="FedAvg pre-training over private client datasets (§5)",
)
def _stage_federated_pretrain(experiment, inputs, params):
    """Run (or restore) collective pre-training; the global model is
    stored as a regular pre-trained checkpoint, so ``Experiment`` /
    ``Predictor`` machinery can serve it downstream."""
    store, key = experiment.store, params.get("key")
    n_clients, rounds, client_runs = _federated_params(params)
    if store is not None and key is not None:
        cached = store.get_pretrained(key)
        if cached is not None:
            return True, {
                "n_clients": n_clients,
                "rounds": cached.history.epochs_run,
                "global_test_mse": cached.test_mse_seconds2,
                "round_test_mse": list(cached.history.val_loss),
            }
    scale = experiment.scale
    base = experiment.spec.scenario_config(ScenarioKind.PRETRAIN)
    start = time.perf_counter()
    clients = [
        generate_dataset(
            _client_scenario(base, 100 + index),
            window_config=scale.window,
            n_runs=client_runs,
            name=f"client-{index}",
        )
        for index in range(n_clients)
    ]
    # The collective model is scored on a fresh, unseen organisation's
    # traffic — the paper's generalization pitch.
    held_out = generate_dataset(
        _client_scenario(base, 999),
        window_config=scale.window,
        n_runs=client_runs,
        name="held-out-org",
    )
    trainer = FederatedTrainer(
        scale.model_config(), clients, settings=scale.pretrain_settings
    )
    outcomes = trainer.run(rounds, evaluation_bundle=held_out)
    history = TrainingHistory(
        train_loss=[float(np.mean(outcome.client_losses)) for outcome in outcomes],
        val_loss=[float(outcome.global_test_mse) for outcome in outcomes],
        lr=[scale.pretrain_settings.lr] * rounds,
        wall_time=time.perf_counter() - start,
        epochs_run=rounds,
        stopped_early=False,
    )
    result = PretrainResult(
        model=trainer.global_model,
        pipeline=trainer.pipeline,
        history=history,
        test_mse_seconds2=float(outcomes[-1].global_test_mse),
    )
    if store is not None and key is not None:
        store.put_pretrained(key, result)
    return False, {
        "n_clients": n_clients,
        "rounds": rounds,
        "global_test_mse": result.test_mse_seconds2,
        "round_test_mse": list(history.val_loss),
        "final_client_losses": [float(loss) for loss in outcomes[-1].client_losses],
    }


# -- drift_monitor -----------------------------------------------------------------

#: Stage parameters (set via ExperimentSpec.stage_params["drift_monitor"]):
#: Page-Hinkley threshold multiple and benign-noise slack over the
#: baseline error.
DRIFT_DEFAULTS = {"sensitivity": 50.0, "tolerance": 0.5}


def _drift_params(params: dict) -> tuple[float, float]:
    return (
        float(params.get("sensitivity", DRIFT_DEFAULTS["sensitivity"])),
        float(params.get("tolerance", DRIFT_DEFAULTS["tolerance"])),
    )


def _drift_key(spec, params: dict) -> str:
    from repro.api.store import pretrained_key

    scale = spec.to_scale()
    sensitivity, tolerance = _drift_params(params)
    model_key = versioned_key(
        "pretrain",
        pretrained_key(
            spec.scenario_config(ScenarioKind.PRETRAIN),
            scale.window,
            scale.n_runs,
            scale.model_config(),
            scale.pretrain_settings,
        ),
    )
    return stable_hash(
        {
            "artifact": "drift_monitor",
            "model": model_key,
            "scenario": spec.scenario_config(spec.scenario),
            "sensitivity": sensitivity,
            "tolerance": tolerance,
        }
    )


def _report_row(report: DriftReport) -> dict:
    return {
        "windows_seen": report.windows_seen,
        "mean_error": report.mean_error,
        "statistic": report.statistic,
        "threshold": report.threshold,
        "drifted": report.drifted,
        "degradation_ratio": report.degradation_ratio,
    }


@register_stage(
    "drift_monitor",
    deps=("pretrain",),
    version=1,
    kind="evaluations",
    key_fn=_drift_key,
    description="Page-Hinkley drift check of the deployed NTT on this spec's scenario (§5)",
)
def _stage_drift_monitor(experiment, inputs, params):
    """Deploy the (store-backed) pre-trained model, calibrate the
    monitor on its validation windows, then feed it in-distribution
    traffic followed by the spec's scenario."""
    store, key = experiment.store, params.get("key")
    if store is not None and key is not None:
        cached = store.get_json("evaluations", key)
        if cached is not None:
            return True, cached
    sensitivity, tolerance = _drift_params(params)
    pre = experiment.pretrained()
    baseline = experiment.bundle(ScenarioKind.PRETRAIN)
    monitor = DriftMonitor(
        pre.model,
        pre.pipeline,
        baseline=baseline.val,
        sensitivity=sensitivity,
        tolerance=tolerance,
    )
    in_distribution = monitor.observe(baseline.test)
    scenario = experiment.spec.scenario
    if scenario == ScenarioKind.PRETRAIN:
        fresh = in_distribution
    else:
        fresh = monitor.observe(experiment.bundle(scenario).test)
    payload = {
        "scenario": scenario,
        "sensitivity": sensitivity,
        "tolerance": tolerance,
        "baseline_error": monitor.baseline_error,
        "in_distribution": _report_row(in_distribution),
        "fresh": _report_row(fresh),
        "drifted": fresh.drifted,
    }
    if store is not None and key is not None:
        store.put_json("evaluations", key, payload)
    return False, payload
