"""Egress queues.

The paper's bottleneck uses a 1000-packet drop-tail queue; RED is
provided as an extension so future-work experiments (queuing-discipline
diversity, §5 of the paper) can be expressed.

Queues sit on the simulator's per-packet fast path, so the bookkeeping
is deliberately flat: slotted counter objects, plain attribute
increments, and an optional :class:`~repro.netsim.core.SimStats`
reference (threaded in by the owning channel) that aggregates drops
simulation-wide without any monitor callback.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.netsim.packet import Packet

__all__ = ["DropTailQueue", "REDQueue", "QueueStats"]


class QueueStats:
    """Counters shared by all queue implementations."""

    __slots__ = (
        "enqueued",
        "dequeued",
        "dropped",
        "bytes_enqueued",
        "bytes_dropped",
        "max_occupancy",
    )

    def __init__(self):
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.bytes_enqueued = 0
        self.bytes_dropped = 0
        self.max_occupancy = 0

    def __repr__(self) -> str:
        return (
            f"QueueStats(enqueued={self.enqueued}, dequeued={self.dequeued}, "
            f"dropped={self.dropped}, max_occupancy={self.max_occupancy})"
        )


class DropTailQueue:
    """FIFO queue bounded in packets; arrivals beyond capacity are dropped.

    This is the queueing discipline of the paper's Fig. 4 bottleneck
    ("queue size of 1000 packets").
    """

    __slots__ = ("capacity", "_items", "stats", "sim_stats")

    #: FIFO service order: accepted packets depart in arrival order, so
    #: channels may pre-book departures (see :mod:`repro.netsim.link`).
    fifo_service = True

    def __init__(self, capacity_packets: int):
        if capacity_packets <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_packets}")
        self.capacity = int(capacity_packets)
        self._items: deque[Packet] = deque()
        self.stats = QueueStats()
        #: Simulation-wide counters, set by the owning channel.
        self.sim_stats = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> int:
        """Number of packets currently queued."""
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) when full."""
        items = self._items
        occupancy = len(items) + 1
        if occupancy > self.capacity:
            self._count_drop(packet)
            return False
        items.append(packet)
        stats = self.stats
        stats.enqueued += 1
        stats.bytes_enqueued += packet.size
        if occupancy > stats.max_occupancy:
            stats.max_occupancy = occupancy
        return True

    def _count_drop(self, packet: Packet) -> None:
        stats = self.stats
        stats.dropped += 1
        stats.bytes_dropped += packet.size
        sim_stats = self.sim_stats
        if sim_stats is not None:
            sim_stats.packets_dropped += 1
            sim_stats.bytes_dropped += packet.size

    def dequeue(self) -> Packet | None:
        """Pop the oldest packet, or ``None`` when empty."""
        items = self._items
        if not items:
            return None
        self.stats.dequeued += 1
        return items.popleft()


class REDQueue(DropTailQueue):
    """Random Early Detection on top of the drop-tail bound.

    Classic RED [Floyd & Jacobson 1993]: an EWMA of the occupancy drives a
    drop probability that ramps linearly between ``min_threshold`` and
    ``max_threshold``; above ``max_threshold`` every arrival is dropped.
    """

    __slots__ = ("min_threshold", "max_threshold", "max_drop_probability", "weight", "average", "_rng")

    def __init__(
        self,
        capacity_packets: int,
        min_threshold: int | None = None,
        max_threshold: int | None = None,
        max_drop_probability: float = 0.1,
        weight: float = 0.002,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(capacity_packets)
        self.min_threshold = min_threshold if min_threshold is not None else capacity_packets // 4
        self.max_threshold = max_threshold if max_threshold is not None else capacity_packets // 2
        if not 0 <= self.min_threshold < self.max_threshold <= capacity_packets:
            raise ValueError(
                f"need 0 <= min ({self.min_threshold}) < max ({self.max_threshold})"
                f" <= capacity ({capacity_packets})"
            )
        if not 0.0 < max_drop_probability <= 1.0:
            raise ValueError(f"max_drop_probability must be in (0, 1], got {max_drop_probability}")
        self.max_drop_probability = max_drop_probability
        self.weight = weight
        self.average = 0.0
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def enqueue(self, packet: Packet) -> bool:
        self.average = (1.0 - self.weight) * self.average + self.weight * len(self._items)
        if self.average >= self.max_threshold:
            self._count_drop(packet)
            return False
        if self.average > self.min_threshold:
            ramp = (self.average - self.min_threshold) / (self.max_threshold - self.min_threshold)
            if self._rng.random() < ramp * self.max_drop_probability:
                self._count_drop(packet)
                return False
        return super().enqueue(packet)
