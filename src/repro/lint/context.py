"""Per-file lint context shared by every rule.

A :class:`SourceModule` is parsed once (source, AST, pragma comments)
and handed to each rule, so N rules cost one parse.  It also owns the
two pieces of pragma-derived geometry rules care about: which lines are
inside a ``# repro: hot`` region, and which findings are excused by a
justified ``# repro: allow(...)`` comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .pragmas import HotRegion, PragmaError, Suppression, parse_pragmas

__all__ = ["SourceModule", "load_module"]


@dataclass
class SourceModule:
    """One parsed python file under lint."""

    path: Path  # absolute path on disk
    scope_path: str  # posix path relative to the lint root ("serve/http.py")
    source: str
    tree: ast.Module
    lines: list = field(default_factory=list)
    suppressions: list = field(default_factory=list)
    hot_regions: list = field(default_factory=list)
    pragma_errors: list = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    @property
    def root(self) -> Path:
        """The lint root this module was collected under — the absolute
        path minus the scope path.  Whole-program rules index every file
        under it, regardless of which files were selected for linting."""
        depth = len(Path(self.scope_path).parts)
        return self.path.parents[depth - 1]

    def finding(
        self,
        node,
        rule: str,
        message: str,
        severity: str = "error",
        chain: tuple = (),
    ) -> Finding:
        """Build a finding anchored at ``node`` (or a (line, col) pair)."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line, col = node.lineno, node.col_offset
        return Finding(
            path=self.scope_path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            severity=severity,
            snippet=self.line_text(line),
            chain=tuple(chain),
        )

    def in_hot_region(self, line: int) -> bool:
        return any(region.covers(line) for region in self.hot_regions)

    def is_suppressed(self, finding: Finding):
        """The suppression excusing ``finding``, or None."""
        for suppression in self.suppressions:
            if suppression.rule == finding.rule and suppression.covers(
                finding.line
            ):
                return suppression
        return None


def load_module(
    path: Path, scope_path: str, known_rules: tuple
) -> SourceModule:
    """Parse ``path`` into a :class:`SourceModule`.

    Raises :class:`SyntaxError` if the file does not parse; the engine
    converts that into a ``parse`` finding rather than crashing the run.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    suppressions, hot_regions, pragma_errors = parse_pragmas(
        source, tree, known_rules
    )
    return SourceModule(
        path=path,
        scope_path=scope_path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=list(suppressions),
        hot_regions=list(hot_regions),
        pragma_errors=list(pragma_errors),
    )
