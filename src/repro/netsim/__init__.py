"""Packet-level discrete-event network simulator (the ns-3 substitute).

The simulator reproduces the dynamics the paper's datasets depend on:
store-and-forward links with serialization and propagation delay,
drop-tail queues at a shared bottleneck, message-based senders following
a heavy-tailed workload, and TCP cross-traffic.

Main entry points:

* :class:`repro.netsim.core.Simulator` — the event loop (slotted
  two-tier calendar; see the module docstring for which scheduling
  patterns hit the O(1) fast path).
* :class:`repro.netsim.topology.Network` — nodes, links and routing.
* :mod:`repro.netsim.scenarios` — the paper's Fig. 4 setups.
* :mod:`repro.netsim.reference` — the pre-optimisation stack, kept for
  golden-equivalence tests and benchmark baselines
  (``with legacy_path(): run_scenario(config)``).
"""

from repro.netsim.core import SimStats, Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue, REDQueue
from repro.netsim.reference import legacy_path
from repro.netsim.shapers import PriorityQueue, TokenBucketShaper
from repro.netsim.topology import Network
from repro.netsim.trace import PacketRecord, Trace, TraceCollector

__all__ = [
    "Simulator",
    "SimStats",
    "Packet",
    "Network",
    "PacketRecord",
    "Trace",
    "TraceCollector",
    "DropTailQueue",
    "REDQueue",
    "PriorityQueue",
    "TokenBucketShaper",
    "legacy_path",
]
