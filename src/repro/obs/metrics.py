"""Process-wide metrics: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` per process is the substrate every
subsystem records into — the campaign engine, the Trainer, netsim and
the serving runtime all share the same three instrument kinds:

* :class:`Counter` — monotone totals (``requests_total``).
* :class:`Gauge` — last-written values (``last_loss``).
* :class:`Histogram` — bucketed distributions with per-bin counts,
  a running sum and a count (``step_seconds``).

Every instrument carries a name plus optional labels, and identical
``(name, labels)`` pairs resolve to the *same* instrument, so call
sites never need to hold references.  All mutation happens under one
registry lock (instrument updates are single dict/float operations —
contention is negligible at the rates this codebase records at).

Snapshots are plain JSON-ready dictionaries designed to travel across
process boundaries: a pool worker snapshots its registry before and
after a task, ships the :func:`subtract` delta home inside the task
record, and the engine folds deltas together with
:func:`merge_snapshots` — counters and histogram bins add, gauges take
the newest value, events concatenate — so a 2-worker campaign reports
the same merged totals as the serial run.

:func:`prometheus_text` renders any snapshot in the Prometheus text
exposition format (version 0.0.4): histograms become cumulative
``_bucket{le=...}`` series, dotted metric names are sanitised to
underscores, and label values are escaped per the spec.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from collections.abc import Callable, Mapping, Sequence
from typing import Any

#: JSON-ready snapshot shape: ``counters``/``gauges``/``histograms``
#: keyed by series, plus an ``events`` list.  Kept loose on purpose —
#: snapshots cross process boundaries as plain JSON.
Snapshot = dict[str, Any]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "merge_snapshots",
    "subtract",
    "empty_snapshot",
    "prometheus_text",
]

#: Default histogram upper edges (inclusive), in seconds — spans the
#: microsecond-to-minutes range the subsystems observe.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _series_key(name: str, labels: Mapping[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotone total.  ``inc`` with a negative amount is rejected."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self, name: str, labels: dict[str, object], lock: threading.Lock
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _entry(self) -> dict[str, object]:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Gauge:
    """A last-written value (may go up or down)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self, name: str, labels: dict[str, object], lock: threading.Lock
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _entry(self) -> dict[str, object]:
        return {"name": self.name, "labels": dict(self.labels), "value": self._value}


class Histogram:
    """Bucketed observations: per-bin counts, sum and count.

    ``buckets`` are *inclusive* upper edges; values beyond the last
    edge land in an open-ended overflow bin, so ``counts`` has
    ``len(buckets) + 1`` entries.  Prometheus rendering converts the
    per-bin counts to the cumulative ``le`` form.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict[str, object],
        buckets: Sequence[float],
        lock: threading.Lock,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty buckets")
        self.name = name
        self.labels = labels
        self.buckets: tuple[float, ...] = tuple(float(edge) for edge in buckets)
        self.counts: list[int] = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def _entry(self) -> dict[str, object]:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Thread-safe home of every instrument in one process (or scope).

    Also keeps a small structured *event log* — one-shot operational
    facts (``runtime.downgraded_to_serial``) that belong in a manifest
    rather than a counter.  Events travel inside snapshots like every
    other series.
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events: list[dict[str, object]] = []

    # -- instruments --------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, labels, self._lock)
                )
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(
                    key, Gauge(name, labels, self._lock)
                )
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = _series_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, labels, buckets, self._lock)
                )
        elif tuple(float(edge) for edge in buckets) != instrument.buckets:
            raise ValueError(
                f"histogram {key!r} already registered with different buckets"
            )
        return instrument

    def record_event(self, name: str, **fields: object) -> dict[str, object]:
        """Append one structured event; returns the stored record."""
        event: dict[str, object] = {"event": name, "time_unix": self._clock(), **fields}
        with self._lock:
            self._events.append(event)
        return event

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A JSON-ready, point-in-time copy of every series."""
        with self._lock:
            return {
                "counters": {k: c._entry() for k, c in self._counters.items()},
                "gauges": {k: g._entry() for k, g in self._gauges.items()},
                "histograms": {k: h._entry() for k, h in self._histograms.items()},
                "events": [dict(event) for event in self._events],
            }

    def merge(self, snapshot: Snapshot) -> None:
        """Fold an external snapshot into the live registry.

        Counters and histogram bins add; gauges take the snapshot's
        value; events append.  Used by the engine to surface pool
        workers' metrics in the parent process.
        """
        for entry in snapshot.get("counters", {}).values():
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snapshot.get("gauges", {}).values():
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snapshot.get("histograms", {}).values():
            histogram = self.histogram(
                entry["name"], buckets=tuple(entry["buckets"]), **entry["labels"]
            )
            with self._lock:
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
        with self._lock:
            self._events.extend(dict(event) for event in snapshot.get("events", ()))


def empty_snapshot() -> Snapshot:
    return {"counters": {}, "gauges": {}, "histograms": {}, "events": []}


def merge_snapshots(*snapshots: Snapshot) -> Snapshot:
    """Combine snapshots: counters/histograms add, gauges last-write-wins,
    events concatenate.  Input snapshots are not mutated."""
    merged = empty_snapshot()
    for snapshot in snapshots:
        if not snapshot:
            continue
        for key, entry in snapshot.get("counters", {}).items():
            present = merged["counters"].get(key)
            if present is None:
                merged["counters"][key] = dict(entry)
            else:
                present["value"] += entry["value"]
        for key, entry in snapshot.get("gauges", {}).items():
            merged["gauges"][key] = dict(entry)
        for key, entry in snapshot.get("histograms", {}).items():
            present = merged["histograms"].get(key)
            if present is None:
                merged["histograms"][key] = {
                    **entry,
                    "buckets": list(entry["buckets"]),
                    "counts": list(entry["counts"]),
                }
            else:
                if list(present["buckets"]) != list(entry["buckets"]):
                    raise ValueError(f"histogram {key!r} bucket mismatch in merge")
                present["counts"] = [
                    a + b for a, b in zip(present["counts"], entry["counts"])
                ]
                present["sum"] += entry["sum"]
                present["count"] += entry["count"]
        merged["events"].extend(dict(event) for event in snapshot.get("events", ()))
    return merged


def subtract(after: Snapshot, before: Snapshot) -> Snapshot:
    """The delta between two snapshots of the *same* registry.

    Counters and histograms subtract (series absent from ``before``
    pass through); gauges take ``after``'s value; events are the suffix
    recorded since ``before``.  Zero-valued counter deltas are dropped
    so per-task records stay small.
    """
    delta = empty_snapshot()
    for key, entry in after.get("counters", {}).items():
        previous = before.get("counters", {}).get(key)
        value = entry["value"] - (previous["value"] if previous else 0.0)
        if value:
            delta["counters"][key] = {**entry, "value": value}
    for key, entry in after.get("gauges", {}).items():
        delta["gauges"][key] = dict(entry)
    for key, entry in after.get("histograms", {}).items():
        previous = before.get("histograms", {}).get(key)
        if previous is None:
            counts, total, count = list(entry["counts"]), entry["sum"], entry["count"]
        else:
            counts = [a - b for a, b in zip(entry["counts"], previous["counts"])]
            total = entry["sum"] - previous["sum"]
            count = entry["count"] - previous["count"]
        if count:
            delta["histograms"][key] = {
                **entry,
                "buckets": list(entry["buckets"]),
                "counts": counts,
                "sum": total,
                "count": count,
            }
    n_before = len(before.get("events", ()))
    delta["events"] = [dict(event) for event in after.get("events", ())[n_before:]]
    return delta


# -- Prometheus text exposition ---------------------------------------------------

_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_INVALID.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _label_text(
    labels: Mapping[str, object], extra: Mapping[str, object] | None = None
) -> str:
    merged: dict[str, object] = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_INVALID.sub("_", key)}="{_escape_label_value(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: Snapshot) -> str:
    """Render a snapshot in the Prometheus text format (0.0.4).

    Histogram per-bin counts become cumulative ``_bucket{le="..."}``
    series ending in ``le="+Inf"``, plus ``_sum``/``_count``.  Events
    are operational records, not series, and are not rendered.
    """
    lines: list[str] = []
    by_name: dict[tuple[str, str], list[dict[str, Any]]] = {}
    for kind in ("counters", "gauges", "histograms"):
        for entry in snapshot.get(kind, {}).values():
            by_name.setdefault((kind, entry["name"]), []).append(entry)
    for (kind, raw_name), entries in sorted(by_name.items()):
        name = _metric_name(raw_name)
        prom_kind = {"counters": "counter", "gauges": "gauge", "histograms": "histogram"}
        lines.append(f"# TYPE {name} {prom_kind[kind]}")
        for entry in entries:
            if kind == "histograms":
                cumulative = 0
                for edge, count in zip(entry["buckets"], entry["counts"]):
                    cumulative += count
                    labels = _label_text(entry["labels"], {"le": _format_value(edge)})
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                cumulative += entry["counts"][-1]
                labels = _label_text(entry["labels"], {"le": "+Inf"})
                lines.append(f"{name}_bucket{labels} {cumulative}")
                base = _label_text(entry["labels"])
                lines.append(f"{name}_sum{base} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{base} {entry['count']}")
            else:
                labels = _label_text(entry["labels"])
                lines.append(f"{name}{labels} {_format_value(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")
