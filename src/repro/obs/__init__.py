"""``repro.obs`` — unified tracing, metrics and profiling.

One zero-dependency substrate replaces the subsystems' private
telemetry: a process-wide :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges, histograms with labels; snapshots merge across pool
workers) and a :class:`~repro.obs.trace.Tracer` producing nested spans
exportable as Chrome trace-event JSON and structured JSONL.

The whole subsystem is gated on the ``REPRO_OBS`` environment variable
(default *on*; ``REPRO_OBS=0`` disables).  Disabled, the accessor
functions hand out shared no-op singletons, so instrumentation sites
cost one module-global boolean read — the netsim and nn benchmarks
assert the overhead is within noise of zero.

Call-site conventions:

* ``obs.enabled()`` — guard for anything beyond a single record call.
* ``obs.metrics()`` / ``obs.tracer()`` — the *gated* accessors: the
  live registry/tracer when enabled, no-ops when disabled.  Always use
  these at instrumentation sites.
* ``obs.get_registry()`` / ``obs.get_tracer()`` — the live objects
  regardless of gating, for infrastructure that owns its telemetry
  (the serving runtime's ``/metrics``, the engine's manifest embed).
* ``obs.capture_tracer()`` — scope a fresh tracer to the current
  thread (the campaign worker wraps each task in one, so stage-level
  spans nest under the task span and travel home in the task record).
* ``obs.record_event(name, **fields)`` — one structured operational
  event, mirrored into the registry's event log and the current
  tracer's instants.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    prometheus_text,
    subtract,
)
from repro.obs.trace import Span, Tracer, chrome_trace, spans_to_jsonl

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "Span",
    "DEFAULT_TIME_BUCKETS",
    "merge_snapshots",
    "subtract",
    "empty_snapshot",
    "prometheus_text",
    "chrome_trace",
    "spans_to_jsonl",
    "enabled",
    "configure",
    "scope",
    "metrics",
    "tracer",
    "get_registry",
    "get_tracer",
    "capture_tracer",
    "record_event",
    "reset",
]

_FALSY = ("0", "false", "off", "no")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "1").strip().lower() not in _FALSY


_ENABLED = _env_enabled()
_REGISTRY = MetricsRegistry()
_GLOBAL_TRACER = Tracer()
_LOCAL = threading.local()


def enabled() -> bool:
    """Whether instrumentation is live in this process."""
    return _ENABLED


def configure(on: bool) -> None:
    """Flip the global gate (tests and benchmarks; prefer :func:`scope`)."""
    global _ENABLED
    _ENABLED = bool(on)


@contextmanager
def scope(on: bool):
    """Temporarily force the gate on or off."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    try:
        yield
    finally:
        _ENABLED = previous


# -- no-op layer ------------------------------------------------------------------


class _NullInstrument:
    """Absorbs every instrument call; one shared instance per process."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


class _NullTracer:
    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, start_us: float, dur_us: float, **attrs):
        return _NULL_SPAN

    def instant(self, name: str, **attrs) -> dict:
        return {}

    def now_us(self) -> float:
        return 0.0

    def finished(self) -> list:
        return []

    def instants(self) -> list:
        return []

    def clear(self) -> None:
        pass


class _NullRegistry:
    __slots__ = ()

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS, **labels):
        return _NULL_INSTRUMENT

    def record_event(self, name: str, **fields) -> dict:
        return {}

    def snapshot(self) -> dict:
        return empty_snapshot()

    def merge(self, snapshot: dict) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()
_NULL_SPAN = _NullSpan()
_NULL_TRACER = _NullTracer()
_NULL_REGISTRY = _NullRegistry()


# -- accessors --------------------------------------------------------------------


def get_registry() -> MetricsRegistry:
    """The live process registry, regardless of the gate."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The live current tracer: the thread's captured tracer if one is
    active (see :func:`capture_tracer`), else the process tracer."""
    captured = getattr(_LOCAL, "tracer", None)
    return captured if captured is not None else _GLOBAL_TRACER


def metrics():
    """Gated registry: live when enabled, a shared no-op otherwise."""
    return _REGISTRY if _ENABLED else _NULL_REGISTRY


def tracer():
    """Gated tracer: the current tracer when enabled, a no-op otherwise."""
    if not _ENABLED:
        return _NULL_TRACER
    return get_tracer()


@contextmanager
def capture_tracer():
    """Route this thread's spans into a fresh tracer; yields it.

    The campaign worker wraps each task in one so stage code recording
    through :func:`tracer` lands inside the task's own span tree — the
    serialized result travels home in the task record regardless of
    which process executed the task.
    """
    fresh = Tracer()
    previous = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = fresh
    try:
        yield fresh
    finally:
        _LOCAL.tracer = previous


def record_event(name: str, **fields) -> dict:
    """One structured operational event (no-op when disabled)."""
    if not _ENABLED:
        return {}
    event = _REGISTRY.record_event(name, **fields)
    get_tracer().instant(name, **fields)
    return event


def reset() -> None:
    """Fresh registry and tracer; re-reads ``REPRO_OBS`` (tests only)."""
    global _REGISTRY, _GLOBAL_TRACER, _ENABLED
    _REGISTRY = MetricsRegistry()
    _GLOBAL_TRACER = Tracer()
    _LOCAL.tracer = None
    _ENABLED = _env_enabled()
