"""Tests for the module/parameter system."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor


class Toy(Module):
    def __init__(self, rng):
        super().__init__()
        self.linear = Linear(3, 2, rng)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.linear(x) * self.scale


def test_parameter_requires_grad():
    assert Parameter(np.ones(3)).requires_grad


def test_named_parameters_are_dotted(rng):
    toy = Toy(rng)
    names = [name for name, _ in toy.named_parameters()]
    assert "linear.weight" in names
    assert "linear.bias" in names
    assert "scale" in names


def test_parameters_traverses_children(rng):
    toy = Toy(rng)
    assert len(toy.parameters()) == 3


def test_num_parameters(rng):
    toy = Toy(rng)
    assert toy.num_parameters() == 3 * 2 + 2 + 2


def test_zero_grad_clears_all(rng):
    toy = Toy(rng)
    out = toy(Tensor(np.ones((4, 3))))
    out.sum().backward()
    assert all(p.grad is not None for p in toy.parameters())
    toy.zero_grad()
    assert all(p.grad is None for p in toy.parameters())


def test_train_eval_recursive(rng):
    model = Sequential(Linear(3, 3, rng), Linear(3, 3, rng))
    model.eval()
    assert all(not module.training for module in model.modules())
    model.train()
    assert all(module.training for module in model.modules())


def test_state_dict_roundtrip(rng):
    toy_a = Toy(rng)
    toy_b = Toy(np.random.default_rng(777))
    x = np.ones((2, 3))
    assert not np.allclose(toy_a(Tensor(x)).data, toy_b(Tensor(x)).data)
    toy_b.load_state_dict(toy_a.state_dict())
    assert np.allclose(toy_a(Tensor(x)).data, toy_b(Tensor(x)).data)


def test_state_dict_is_a_copy(rng):
    toy = Toy(rng)
    state = toy.state_dict()
    state["scale"][:] = 99.0
    assert not np.allclose(toy.scale.data, 99.0)


def test_load_missing_key_rejected(rng):
    toy = Toy(rng)
    state = toy.state_dict()
    del state["scale"]
    with pytest.raises(KeyError):
        toy.load_state_dict(state)


def test_load_shape_mismatch_rejected(rng):
    toy = Toy(rng)
    state = toy.state_dict()
    state["scale"] = np.ones(5)
    with pytest.raises(ValueError):
        toy.load_state_dict(state)


def test_register_parameter_explicit(rng):
    module = Module()
    module.register_parameter("w", Parameter(np.zeros(3)))
    assert [name for name, _ in module.named_parameters()] == ["w"]


def test_module_list_registration(rng):
    layers = ModuleList(Linear(2, 2, rng) for _ in range(3))
    assert len(layers) == 3
    assert len(list(layers)) == 3
    parent = Module()
    parent.stack = layers
    assert len(parent.parameters()) == 6


def test_module_list_getitem(rng):
    layers = ModuleList([Linear(2, 2, rng)])
    assert isinstance(layers[0], Linear)


def test_module_list_forward_rejected(rng):
    with pytest.raises(RuntimeError):
        ModuleList([Linear(2, 2, rng)])(None)


def test_forward_not_implemented():
    with pytest.raises(NotImplementedError):
        Module()(1)
