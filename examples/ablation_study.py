#!/usr/bin/env python
"""Ablation study: which NTT design choices matter (Table 1, bottom).

Pre-trains the ablated variants of §4 — no aggregation, fixed
aggregation, no packet sizes, no delays — and compares their
pre-training delay MSE against the full model.  Each variant's
checkpoint is content-addressed in the artifact store, so a second run
of this script costs seconds instead of minutes.

Run::

    python examples/ablation_study.py
    python examples/ablation_study.py --scale small
"""

from __future__ import annotations

import argparse

from repro.api import Experiment, ExperimentSpec, FeatureSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    args = parser.parse_args()

    exp = Experiment(ExperimentSpec(scenario="pretrain", scale=args.scale))
    scale = exp.scale

    variants = {
        "full NTT": {},
        "no aggregation": dict(aggregation=scale.aggregation_variants["none"]),
        "fixed aggregation": dict(aggregation=scale.aggregation_variants["fixed"]),
        "without packet size": dict(features=FeatureSpec.without_size()),
        "without delay": dict(features=FeatureSpec.without_delay()),
    }

    print(f"Pre-training {len(variants)} NTT variants ({scale.name} scale)...\n")
    print(f"{'variant':22s} {'agg spec':28s} {'params':>8s} {'MSE x1e-3':>10s} {'wall':>6s}")
    results = {}
    for name, overrides in variants.items():
        outcome = (
            exp.pretrained() if not overrides else exp.pretrain_variant(**overrides)
        )
        config = outcome.model.config
        results[name] = outcome
        print(
            f"{name:22s} {config.aggregation.describe():28s} "
            f"{outcome.model.num_parameters():8d} "
            f"{outcome.test_mse_scaled:10.4f} {outcome.history.wall_time:5.0f}s"
        )

    print("\nReading the table:")
    print(" * 'without delay' cannot see any congestion signal -> worst MSE.")
    print(" * 'no aggregation' sees only the recent packets -> little history.")
    print(" * 'fixed aggregation' sees a long history but loses packet detail.")
    print(" * the multi-timescale full NTT balances both (the §3 design).")


if __name__ == "__main__":
    main()
