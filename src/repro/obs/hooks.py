"""Observability hooks for the training loop.

The :class:`~repro.nn.trainer.Trainer` no longer keeps private timing
bookkeeping — it reports step/epoch/evaluation facts to a list of
hooks, and this module provides the hook that routes them into the
``repro.obs`` substrate: counters and histograms into the gated
registry, one completed span per epoch/evaluation into the current
tracer (so training inside a campaign task nests under the task span).

The hook resolves :func:`repro.obs.metrics` / :func:`repro.obs.tracer`
*at call time*, so a trainer constructed before a worker's
``capture_tracer`` scope still records into the task's tracer.
"""

from __future__ import annotations

import repro.obs as obs

__all__ = ["TrainerHook", "TrainerObsHook", "default_trainer_hooks"]


class TrainerHook:
    """Base hook: every callback is optional; all default to no-ops.

    ``seconds`` arguments are measured on ``time.perf_counter`` by the
    trainer itself, so hooks never need their own clocks.
    """

    def on_step(self, step: int, loss: float, lr: float, seconds: float) -> None:
        """After one optimizer step (``step`` is the global step index)."""

    def on_epoch_end(
        self, epoch: int, mean_loss: float, mean_lr: float, seconds: float, steps: int
    ) -> None:
        """After one full pass over the training loader."""

    def on_evaluate(self, loss: float, count: int, seconds: float) -> None:
        """After one full evaluation pass (``count`` samples)."""


class TrainerObsHook(TrainerHook):
    """Routes trainer events into the gated registry and tracer."""

    def on_step(self, step: int, loss: float, lr: float, seconds: float) -> None:
        registry = obs.metrics()
        registry.counter("nn.train.steps_total").inc()
        registry.histogram("nn.train.step_seconds").observe(seconds)

    def on_epoch_end(
        self, epoch: int, mean_loss: float, mean_lr: float, seconds: float, steps: int
    ) -> None:
        registry = obs.metrics()
        registry.counter("nn.train.epochs_total").inc()
        registry.gauge("nn.train.loss").set(mean_loss)
        registry.gauge("nn.train.lr").set(mean_lr)
        tracer = obs.tracer()
        tracer.add_span(
            "nn.train_epoch",
            tracer.now_us() - seconds * 1e6,
            seconds * 1e6,
            epoch=epoch,
            loss=mean_loss,
            steps=steps,
        )

    def on_evaluate(self, loss: float, count: int, seconds: float) -> None:
        registry = obs.metrics()
        registry.counter("nn.eval.passes_total").inc()
        registry.gauge("nn.eval.loss").set(loss)
        tracer = obs.tracer()
        tracer.add_span(
            "nn.evaluate",
            tracer.now_us() - seconds * 1e6,
            seconds * 1e6,
            loss=loss,
            samples=count,
        )


def default_trainer_hooks() -> tuple:
    """The trainer's default hook set: obs when enabled, else nothing."""
    if obs.enabled():
        return (TrainerObsHook(),)
    return ()
