"""Tests for datasets, data loading, the trainer and serialization."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import GELU, Linear, Sequential
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, SGD
from repro.nn.serialize import load_checkpoint, load_state, save_checkpoint
from repro.nn.trainer import Trainer


class TestArrayDataset:
    def test_length_and_indexing(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        x, y = ds[3]
        assert (x, y) == (3, 6)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(10), np.arange(5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_subset(self):
        ds = ArrayDataset(np.arange(10))
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        assert sub[1][0] == 3

    def test_split_positional(self):
        first, second = ArrayDataset(np.arange(10)).split(0.7)
        assert len(first) == 7 and len(second) == 3
        assert list(first.arrays[0]) == list(range(7))

    def test_split_shuffled(self, rng):
        first, second = ArrayDataset(np.arange(100)).split(0.5, rng=rng)
        assert sorted(np.concatenate([first.arrays[0], second.arrays[0]]).tolist()) == list(range(100))
        assert list(first.arrays[0]) != list(range(50))

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(4)).split(1.5)


class TestDataLoader:
    def test_batch_shapes(self):
        ds = ArrayDataset(np.zeros((10, 3)), np.zeros(10))
        loader = DataLoader(ds, batch_size=4)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [4, 4, 2]
        assert len(loader) == 3

    def test_drop_last(self):
        ds = ArrayDataset(np.zeros(10))
        loader = DataLoader(ds, batch_size=4, drop_last=True)
        assert [len(b[0]) for b in loader] == [4, 4]
        assert len(loader) == 2

    def test_shuffle_requires_rng(self):
        ds = ArrayDataset(np.zeros(4))
        with pytest.raises(ValueError):
            DataLoader(ds, 2, shuffle=True)

    def test_shuffle_covers_all_samples(self, rng):
        ds = ArrayDataset(np.arange(20))
        loader = DataLoader(ds, 6, shuffle=True, rng=rng)
        seen = np.concatenate([batch[0] for batch in loader])
        assert sorted(seen.tolist()) == list(range(20))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.zeros(4)), 0)

    def test_reuse_buffers_yields_identical_values(self, rng):
        ds = ArrayDataset(rng.normal(size=(11, 3, 2)), rng.integers(0, 9, size=11))
        plain = [tuple(a.copy() for a in b) for b in DataLoader(ds, 4)]
        reused = [
            tuple(a.copy() for a in b)
            for b in DataLoader(ds, 4, reuse_buffers=True)
        ]
        assert len(plain) == len(reused)
        for batch_p, batch_r in zip(plain, reused):
            for a, b in zip(batch_p, batch_r):
                assert a.dtype == b.dtype
                assert np.array_equal(a, b)

    def test_reuse_buffers_recycles_storage(self, rng):
        ds = ArrayDataset(rng.normal(size=(8, 2)))
        loader = DataLoader(ds, 4, reuse_buffers=True)
        batches = []
        for (batch,) in loader:
            batches.append(batch)
        # Same backing buffer across batches — the zero-copy contract.
        assert batches[0].base is batches[1].base or batches[0] is batches[1]

    def test_reuse_buffers_shuffled_matches_plain(self, rng):
        ds = ArrayDataset(np.arange(20.0))
        a = np.concatenate(
            [b[0].copy() for b in DataLoader(ds, 6, shuffle=True, rng=np.random.default_rng(3))]
        )
        b = np.concatenate(
            [
                b[0].copy()
                for b in DataLoader(
                    ds, 6, shuffle=True, rng=np.random.default_rng(3), reuse_buffers=True
                )
            ]
        )
        assert np.array_equal(a, b)


def make_regression(rng, n=256):
    x = rng.normal(size=(n, 6))
    y = x @ rng.normal(size=(6, 1)) + 0.1
    return ArrayDataset(x, y)


class TestTrainer:
    def test_loss_decreases(self, rng):
        ds = make_regression(rng)
        model = Sequential(Linear(6, 16, rng), GELU(), Linear(16, 1, rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2), mse_loss)
        history = trainer.fit(DataLoader(ds, 32, shuffle=True, rng=rng), epochs=20)
        assert history.final_train_loss < 0.2 * history.train_loss[0]
        assert history.epochs_run == 20
        assert history.wall_time > 0

    def test_validation_tracked(self, rng):
        ds = make_regression(rng)
        train, val = ds.split(0.8, rng=rng)
        model = Sequential(Linear(6, 8, rng), Linear(8, 1, rng))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2), mse_loss)
        history = trainer.fit(
            DataLoader(train, 32, shuffle=True, rng=rng),
            DataLoader(val, 64),
            epochs=5,
        )
        assert len(history.val_loss) == 5
        assert history.best_val_loss <= history.val_loss[0]

    def test_early_stopping(self, rng):
        ds = make_regression(rng, n=64)
        train, val = ds.split(0.8, rng=rng)
        model = Sequential(Linear(6, 4, rng), Linear(4, 1, rng))
        # Vanishing LR: validation can never improve past epoch 1.
        trainer = Trainer(model, SGD(model.parameters(), lr=1e-30), mse_loss)
        history = trainer.fit(
            DataLoader(train, 16, shuffle=True, rng=rng),
            DataLoader(val, 16),
            epochs=50,
            patience=2,
        )
        assert history.stopped_early
        assert history.epochs_run < 50

    def test_patience_without_val_rejected(self, rng):
        ds = make_regression(rng, n=32)
        model = Linear(6, 1, rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), mse_loss)
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(ds, 8), epochs=2, patience=1)

    def test_invalid_epochs(self, rng):
        ds = make_regression(rng, n=32)
        model = Linear(6, 1, rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), mse_loss)
        with pytest.raises(ValueError):
            trainer.fit(DataLoader(ds, 8), epochs=0)

    def test_schedule_changes_lr(self, rng):
        ds = make_regression(rng, n=64)
        model = Linear(6, 1, rng)
        optimizer = Adam(model.parameters(), lr=1.0)
        trainer = Trainer(
            model, optimizer, mse_loss, schedule=lambda step: 0.5
        )
        trainer.fit(DataLoader(ds, 32), epochs=1)
        assert optimizer.lr == pytest.approx(0.5)

    def test_history_lr_is_epoch_mean_of_step_lrs(self, rng):
        """The logged epoch lr averages the per-step rates instead of
        reporting whatever the last batch happened to use."""
        ds = make_regression(rng, n=96)  # 3 batches of 32 per epoch
        model = Linear(6, 1, rng)
        optimizer = Adam(model.parameters(), lr=1.0)
        multipliers = {0: 0.1, 1: 0.2, 2: 0.6, 3: 1.0, 4: 1.0, 5: 1.0}
        trainer = Trainer(
            model, optimizer, mse_loss, schedule=lambda step: multipliers[step]
        )
        history = trainer.fit(DataLoader(ds, 32), epochs=2)
        assert history.lr[0] == pytest.approx((0.1 + 0.2 + 0.6) / 3)
        assert history.lr[1] == pytest.approx(1.0)

    def test_history_lr_without_schedule(self, rng):
        ds = make_regression(rng, n=32)
        model = Linear(6, 1, rng)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), mse_loss)
        history = trainer.fit(DataLoader(ds, 8), epochs=2)
        assert history.lr == [pytest.approx(0.01)] * 2

    def test_on_epoch_start_hook_runs(self, rng):
        ds = make_regression(rng, n=32)
        model = Linear(6, 1, rng)
        calls = []
        trainer = Trainer(
            model, SGD(model.parameters(), lr=0.01), mse_loss,
            on_epoch_start=lambda: calls.append(1),
        )
        trainer.fit(DataLoader(ds, 8), epochs=3)
        assert len(calls) == 3

    def test_partial_optimizer_freezes_rest(self, rng):
        """Training only the head must leave the body untouched."""
        body = Linear(6, 6, rng)
        head = Linear(6, 1, rng)
        model = Sequential(body, head)
        ds = make_regression(rng, n=64)
        before = body.weight.data.copy()
        trainer = Trainer(model, Adam(head.parameters(), lr=1e-2), mse_loss)
        trainer.fit(DataLoader(ds, 16, shuffle=True, rng=rng), epochs=3)
        assert np.array_equal(body.weight.data, before)
        assert not np.array_equal(head.weight.data, np.zeros_like(head.weight.data))

    def test_evaluate_weighted_by_batch(self, rng):
        ds = make_regression(rng, n=10)
        model = Linear(6, 1, rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), mse_loss)
        # One big batch vs uneven batches must agree.
        single = trainer.evaluate(DataLoader(ds, 10))
        uneven = trainer.evaluate(DataLoader(ds, 3))
        assert single == pytest.approx(uneven, rel=1e-9)


class TestSerialize:
    def test_checkpoint_roundtrip(self, rng, tmp_path):
        model_a = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
        model_b = Sequential(
            Linear(4, 8, np.random.default_rng(1)), Linear(8, 2, np.random.default_rng(2))
        )
        path = tmp_path / "model.npz"
        save_checkpoint(model_a, path, metadata={"d": 4})
        metadata = load_checkpoint(model_b, path)
        assert metadata == {"d": 4}
        x = rng.normal(size=(3, 4))
        assert np.allclose(model_a(x).data, model_b(x).data)

    def test_load_state_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state(tmp_path / "missing.npz")

    def test_metadata_optional(self, rng, tmp_path):
        model = Linear(2, 2, rng)
        path = tmp_path / "m.npz"
        save_checkpoint(model, path)
        __, metadata = load_state(path)
        assert metadata == {}

    def test_creates_parent_dirs(self, rng, tmp_path):
        model = Linear(2, 2, rng)
        path = tmp_path / "deep" / "nested" / "m.npz"
        save_checkpoint(model, path)
        assert path.exists()
