"""Shared benchmark fixtures.

The experiment context (datasets + the shared pre-trained NTT) is
session-scoped and store-backed through ``repro.api``: pre-training
dominates wall time, all three table benchmarks reuse it, and repeated
benchmark sessions are served from the on-disk artifact store exactly as
the paper reuses one pre-trained model.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` (seconds; the
default, so the full suite completes in CI), ``small`` (minutes) or
``paper`` (hours).  Set ``REPRO_CACHE_DIR`` to relocate the artifact
store.  Note the store makes repeat sessions measure cache loads, not
training — set ``REPRO_BENCH_NO_CACHE=1`` when the training-time
columns themselves are the experiment.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import Experiment, ExperimentSpec, get_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def scale():
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


@pytest.fixture(scope="session")
def experiment(scale):
    spec = ExperimentSpec(scenario="pretrain", scale=scale.name)
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return Experiment.uncached(spec)
    return Experiment(spec)


@pytest.fixture(scope="session")
def context(experiment):
    return experiment.context


def save_results(name: str, payload: dict) -> Path:
    """Persist one benchmark's result rows as JSON for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path
