"""Tests for campaign planning: dedup, dependencies, seeds, tables."""

import pytest

from repro.api import ExperimentSpec
from repro.runtime import expand_grid, plan_campaign, plan_table, spec_for_scale
from repro.core.pipeline import get_scale


def stages_of(plan):
    from collections import Counter

    return Counter(task.stage for task in plan.ordered())


class TestPlanCampaign:
    def test_single_pretrain_spec_chain(self):
        plan = plan_campaign([ExperimentSpec(scenario="pretrain", scale="smoke")])
        assert stages_of(plan) == {"traces": 1, "bundle": 1, "pretrain": 1, "evaluate": 1}

    def test_finetune_scenario_adds_both_chains(self):
        plan = plan_campaign([ExperimentSpec(scenario="case1", scale="smoke")])
        assert stages_of(plan) == {
            "traces": 2, "bundle": 2, "pretrain": 1, "finetune": 1, "evaluate": 1,
        }

    def test_shared_pretrain_deduplicates(self):
        specs = expand_grid(scenarios=["pretrain", "case1"], scales=["smoke"], seeds=[0])
        plan = plan_campaign(specs)
        counts = stages_of(plan)
        assert counts["pretrain"] == 1  # shared environment plans once
        (pretrain,) = [t for t in plan.ordered() if t.stage == "pretrain"]
        assert len(pretrain.spec_hashes) == 2

    def test_different_seeds_do_not_share(self):
        specs = expand_grid(scenarios=["pretrain"], scales=["smoke"], seeds=[0, 1])
        assert stages_of(plan_campaign(specs))["pretrain"] == 2

    def test_dependencies_precede_dependents(self):
        specs = expand_grid(scenarios=["case1", "case2"], scales=["smoke"], seeds=[0, 1])
        plan = plan_campaign(specs)
        seen = set()
        for task in plan.ordered():
            assert all(dep in seen for dep in task.deps), task.id
            seen.add(task.id)

    def test_spawn_keys_distinct_and_deterministic(self):
        specs = expand_grid(scenarios=["pretrain", "case1"], scales=["smoke"], seeds=[0])
        plan = plan_campaign(specs, seed=42)
        keys = [task.spawn_key for task in plan.ordered()]
        assert len(set(keys)) == len(keys)
        again = plan_campaign(specs, seed=42)
        assert [t.spawn_key for t in again.ordered()] == keys

    def test_stage_filter(self):
        specs = expand_grid(scenarios=["pretrain", "case1"], scales=["smoke"], seeds=[0])
        plan = plan_campaign(specs, stages=("trace_stats",))
        assert stages_of(plan) == {"trace_stats": 2}

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stages"):
            plan_campaign([ExperimentSpec(scale="smoke")], stages=("simulate",))

    def test_table_only_stages_rejected_for_sweeps(self):
        with pytest.raises(ValueError, match="unknown stages"):
            plan_campaign([ExperimentSpec(scale="smoke")], stages=("baselines",))

    def test_unproductive_stage_subset_rejected(self):
        # 'evaluate' without its model stages would plan an empty
        # campaign that "succeeds" doing nothing.
        with pytest.raises(ValueError, match="plan no work"):
            plan_campaign(
                [ExperimentSpec(scenario="case1", scale="smoke")],
                stages=("evaluate",),
            )

    def test_campaign_id_stable(self):
        specs = expand_grid(scenarios=["case1"], scales=["smoke"], seeds=[0])
        assert plan_campaign(specs).campaign_id == plan_campaign(specs).campaign_id

    def test_describe_lists_every_task(self):
        plan = plan_campaign([ExperimentSpec(scenario="case1", scale="smoke")])
        text = plan.describe()
        for task in plan.ordered():
            assert task.id in text


class TestSpecForScale:
    def test_matches_plain_spec_hash(self):
        scale = get_scale("smoke")
        assert (
            spec_for_scale(scale).spec_hash
            == ExperimentSpec(scenario="pretrain", scale="smoke").spec_hash
        )

    def test_captures_modified_settings(self):
        from dataclasses import replace

        from repro.core.pretrain import TrainSettings

        scale = replace(get_scale("smoke"), pretrain_settings=TrainSettings(epochs=1))
        spec = spec_for_scale(scale, seed=3)
        assert spec.pretrain.epochs == 1
        assert spec.seed == 3


class TestPlanTable:
    def test_table1_layout_covers_all_rows(self):
        plan, layout = plan_table(1, spec_for_scale(get_scale("smoke")))
        assert set(layout["variants"]) == {
            "no_aggregation",
            "fixed_aggregation",
            "without_packet_size",
            "without_delay",
        }
        counts = stages_of(plan)
        assert counts["pretrain"] == 5  # base + four ablations
        assert counts["finetune"] == 10  # delay+mct for base and each variant
        assert counts["scratch"] == 2
        assert counts["baselines"] == 2

    def test_table2_layout(self):
        plan, layout = plan_table(2, spec_for_scale(get_scale("smoke")))
        assert {"pretrained_full", "pretrained_10pct", "scratch_full", "scratch_10pct"} <= set(
            layout
        )
        assert stages_of(plan)["pretrain"] == 1

    def test_table3_includes_receiver_ablation(self):
        plan, layout = plan_table(3, spec_for_scale(get_scale("smoke")))
        assert "without_receiver_id" in layout
        assert stages_of(plan)["pretrain"] == 2  # base + without_receiver

    def test_unknown_table_rejected(self):
        with pytest.raises(ValueError, match="unknown table"):
            plan_table(9, spec_for_scale(get_scale("smoke")))
