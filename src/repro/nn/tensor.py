"""Define-by-run automatic differentiation on numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations that
produced it.  Calling :meth:`Tensor.backward` on a scalar loss walks the
graph in reverse topological order and accumulates gradients into every
tensor with ``requires_grad=True``.

Design notes:

* Gradients are plain ``ndarray``s (not Tensors): the library never
  needs higher-order derivatives.
* Broadcasting is supported for the arithmetic operators; gradients are
  reduced back to the operand shapes by :func:`_unbroadcast`.
* All tensors are ``float64``, so finite-difference gradient checks are
  meaningful to ~1e-7.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

from repro.nn import fastpath

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "is_grad_enabled",
    "stack",
    "linear",
    "masked_softmax",
]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction within the block (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """True when operations record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` (shape of a broadcast result) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _may_duplicate(index) -> bool:
    """True when an index expression could address an element twice.

    Slices, integers, ellipses and ``None`` cannot repeat positions;
    array/sequence (fancy) indices can.
    """
    parts = index if isinstance(index, tuple) else (index,)
    return any(
        not (part is None or part is Ellipsis or isinstance(part, (slice, int, np.integer)))
        for part in parts
    )


def _as_array(value) -> np.ndarray:
    dtype = fastpath.default_dtype()
    if isinstance(value, np.ndarray):
        return value.astype(dtype, copy=False)
    return np.asarray(value, dtype=dtype)


class Tensor:
    """An autograd-aware array.

    Args:
        data: array-like payload; stored as ``float64``.
        requires_grad: whether gradients should accumulate into this
            tensor during :meth:`backward`.
        name: optional label used in error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_parents", "_backward")

    # Make numpy hand mixed expressions (``ndarray + Tensor``) back to
    # Python so our reflected operators run instead of numpy broadcasting
    # over a Tensor "object scalar".
    __array_ufunc__ = None

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self.name = name
        self._parents: tuple[Tensor, ...] = ()
        self._backward: Callable[[np.ndarray], None] | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = cls(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def ensure(value) -> "Tensor":
        """Coerce scalars/arrays to a constant Tensor."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # -- basic protocol --------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """The value of a single-element tensor as a Python float."""
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """A constant tensor sharing this tensor's data."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # -- autograd engine --------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 and must be supplied for non-scalars.
        """
        if not self.requires_grad and self._backward is None:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad is only valid for scalars")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(f"grad shape {grad.shape} does not match tensor {self.data.shape}")

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf with requires_grad: accumulate the result.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            node._backward_accumulate(node_grad, grads)

    def _backward_accumulate(self, grad: np.ndarray, grads: dict) -> None:
        """Invoke the op's backward and merge parent contributions."""
        contributions = self._backward(grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution

    def _topological_order(self) -> list["Tensor"]:
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data + other.data

        def backward(grad):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other.data.shape),
            )

        return Tensor._from_op(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), lambda grad: (-grad,))

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.data.shape),
                _unbroadcast(grad * self.data, other.data.shape),
            )

        return Tensor._from_op(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.data.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape),
            )

        return Tensor._from_op(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._from_op(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return grad * b, grad * a
            if a.ndim == 1:  # (k,) @ (..., k, n)
                grad_a = (grad[..., None, :] * b).sum(axis=-1)
                grad_a = _unbroadcast(grad_a, a.shape)
                grad_b = a[:, None] * grad[..., None, :]
                return grad_a, _unbroadcast(grad_b, b.shape)
            if b.ndim == 1:  # (..., m, k) @ (k,)
                grad_a = grad[..., :, None] * b
                grad_b = (a * grad[..., :, None]).sum(axis=tuple(range(a.ndim - 1)))
                return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)

        return Tensor._from_op(data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return Tensor.ensure(other) @ self

    # -- reductions -------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if axis is None:
                return (np.broadcast_to(grad, self.data.shape).copy(),)
            grad_expanded = grad
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    grad_expanded = np.expand_dims(grad_expanded, a)
            return (np.broadcast_to(grad_expanded, self.data.shape).copy(),)

        return Tensor._from_op(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance (the flavour LayerNorm uses)."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            grad_expanded = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for a in sorted(a % self.data.ndim for a in axes):
                    grad_expanded = np.expand_dims(grad_expanded, a)
            return (mask * grad_expanded,)

        return Tensor._from_op(data, (self,), backward)

    # -- shape manipulation --------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._from_op(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._from_op(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad):
            return (np.swapaxes(grad, axis1, axis2),)

        return Tensor._from_op(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape

        def backward(grad):
            out = np.zeros(shape, dtype=grad.dtype)
            if fastpath.fused_ops_enabled() and not _may_duplicate(index):
                # Basic (slice/int) indexing touches each element at most
                # once, so an in-place add on the view replaces the much
                # slower buffered ``np.add.at`` bit-for-bit.
                out[index] += grad
            else:
                np.add.at(out, index, grad)
            return (out,)

        return Tensor._from_op(data, (self,), backward)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows of a 2-D tensor: ``out[i...] = self[indices[i...]]``.

        This is the embedding-lookup primitive; ``indices`` may have any
        shape and the result has shape ``indices.shape + (self.shape[1],)``.
        """
        if self.data.ndim != 2:
            raise ValueError("take_rows expects a 2-D tensor (a table of rows)")
        indices = np.asarray(indices, dtype=np.int64)
        data = self.data[indices]
        shape = self.data.shape

        def backward(grad):
            out = np.zeros(shape, dtype=grad.dtype)
            np.add.at(out, indices.reshape(-1), grad.reshape(-1, shape[1]))
            return (out,)

        return Tensor._from_op(data, (self,), backward)

    # -- element-wise nonlinearities -----------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        return Tensor._from_op(data, (self,), lambda grad: (grad * data,))

    def log(self) -> "Tensor":
        data = np.log(self.data)
        return Tensor._from_op(data, (self,), lambda grad: (grad / self.data,))

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        return Tensor._from_op(data, (self,), lambda grad: (grad * 0.5 / data,))

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        return Tensor._from_op(data, (self,), lambda grad: (grad * (1.0 - data**2),))

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._from_op(data, (self,), lambda grad: (grad * data * (1.0 - data),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)
        return Tensor._from_op(data, (self,), lambda grad: (grad * mask,))

    def gelu(self) -> "Tensor":
        """Gaussian Error Linear Unit (tanh approximation, as in BERT).

        The fused-ops variant performs the same arithmetic in the same
        order but chains it through in-place buffer updates (three
        temporaries instead of eight each way), so values and gradients
        stay bit-identical to the composite implementation.
        """
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        if not fastpath.fused_ops_enabled():
            inner = c * (x + 0.044715 * x**3)
            t = np.tanh(inner)
            data = 0.5 * x * (1.0 + t)

            def backward(grad):
                dinner = c * (1.0 + 3 * 0.044715 * x**2)
                dt = (1.0 - t**2) * dinner
                return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

            return Tensor._from_op(data, (self,), backward)

        # ``x*x*x`` instead of ``x**3``: libm's pow costs ~60ns/element
        # and dominates the whole training step; the explicit product is
        # ~30x faster and differs by at most 1 ulp.  This is the single
        # deliberate arithmetic deviation of the fused path — every
        # other fused op is bit-identical to its composite twin (the
        # golden training tests bound the resulting loss-history drift).
        t = x * x
        np.multiply(t, x, out=t)
        np.multiply(t, 0.044715, out=t)
        np.add(t, x, out=t)
        np.multiply(t, c, out=t)
        np.tanh(t, out=t)
        data = x * 0.5
        shifted = fastpath.scratch(x.shape, x.dtype)
        np.add(t, 1.0, out=shifted)
        np.multiply(data, shifted, out=data)

        def backward(grad):
            dinner = fastpath.scratch(x.shape, grad.dtype)
            np.multiply(x, x, out=dinner)  # x**2 lowers to x*x bitwise
            np.multiply(dinner, 3 * 0.044715, out=dinner)
            np.add(dinner, 1.0, out=dinner)
            np.multiply(dinner, c, out=dinner)
            dt = fastpath.scratch(x.shape, grad.dtype, slot=1)
            np.multiply(t, t, out=dt)
            np.subtract(1.0, dt, out=dt)
            np.multiply(dt, dinner, out=dt)
            out = t + 1.0
            np.multiply(out, 0.5, out=out)
            half_x = dinner
            np.multiply(x, 0.5, out=half_x)
            np.multiply(half_x, dt, out=half_x)
            np.add(out, half_x, out=out)
            np.multiply(out, grad, out=out)
            return (out,)

        return Tensor._from_op(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        return Tensor._from_op(data, (self,), lambda grad: (grad * np.sign(self.data),))

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad):
            dot = (grad * data).sum(axis=axis, keepdims=True)
            return (data * (grad - dot),)

        return Tensor._from_op(data, (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is True with ``value`` (constant)."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, value, self.data)

        def backward(grad):
            return (np.where(mask, 0.0, grad),)

        return Tensor._from_op(data, (self,), backward)

    def dropout(self, rate: float, rng: np.random.Generator) -> "Tensor":
        """Inverted dropout: zero entries with probability ``rate``."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        if rate == 0.0:
            return self
        keep = 1.0 - rate
        mask = (rng.random(self.data.shape) < keep) / keep
        data = self.data * mask
        return Tensor._from_op(data, (self,), lambda grad: (grad * mask,))


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [Tensor.ensure(t) for t in tensors]
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, boundaries, axis=axis))

    return Tensor._from_op(data, tuple(tensors), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused affine map ``x @ weight (+ bias)`` as a single graph node.

    Bit-identical to the composite ``x @ W + b`` chain: the forward adds
    the bias into the matmul output buffer instead of allocating a
    second array, and the backward replays the exact arithmetic the
    autograd engine performed over the two composite nodes (including
    the single-call axis reductions of ``_unbroadcast``), just without
    the intermediate node, closure and gradient-dict traffic.

    ``x`` must have at least 2 dimensions (the composite path still
    covers the exotic 1-D case).
    """
    x = Tensor.ensure(x)
    if x.ndim < 2:
        raise ValueError(f"linear() expects a 2-D+ input, got shape {x.shape}")
    data = x.data @ weight.data
    if bias is not None:
        np.add(data, bias.data, out=data)

    def _grad_w(grad):
        """Weight gradient, batching into a pooled buffer when 3-D+."""
        if x.data.ndim == 2:
            return np.swapaxes(x.data, -1, -2) @ grad
        batched = fastpath.scratch(
            x.data.shape[:-2] + (x.data.shape[-1], grad.shape[-1]), grad.dtype
        )
        np.matmul(np.swapaxes(x.data, -1, -2), grad, out=batched)
        return _unbroadcast(batched, weight.data.shape)

    if bias is None:

        def backward(grad):
            grad_x = grad @ np.swapaxes(weight.data, -1, -2)
            return (grad_x, _grad_w(grad))

        return Tensor._from_op(data, (x, weight), backward)

    def backward(grad):
        # Contribution order matches the composite graph: the bias-add
        # node's backward ran before the matmul node's.
        grad_b = _unbroadcast(grad, bias.data.shape)
        grad_x = grad @ np.swapaxes(weight.data, -1, -2)
        return (grad_x, _grad_w(grad), grad_b)

    return Tensor._from_op(data, (x, weight, bias), backward)


def masked_softmax(x: Tensor, mask: np.ndarray | None = None, axis: int = -1) -> Tensor:
    """Fused (optionally masked) softmax as a single graph node.

    Bit-identical to ``masked_fill(mask, -1e9)`` + ``softmax`` without
    the intermediate autograd node: the mask (True = hide) folds into
    the shifted-exponential buffer in one pass, and the backward zeroes
    hidden positions exactly as the composite ``masked_fill`` backward
    did (this also covers fully-masked rows, which fall back to the
    composite's uniform distribution).
    """
    x = Tensor.ensure(x)
    if mask is None:
        shifted = x.data - x.data.max(axis=axis, keepdims=True)
    else:
        mask = np.asarray(mask, dtype=bool)
        shifted = np.where(mask, x.data.dtype.type(-1e9), x.data)
        np.subtract(shifted, shifted.max(axis=axis, keepdims=True), out=shifted)
    np.exp(shifted, out=shifted)
    denom = shifted.sum(axis=axis, keepdims=True)
    data = shifted
    np.divide(shifted, denom, out=data)

    def backward(grad):
        tmp = grad * data
        dot = tmp.sum(axis=axis, keepdims=True)
        np.subtract(grad, dot, out=tmp)
        np.multiply(data, tmp, out=tmp)
        if mask is not None:
            # The composite masked_fill backward zeroed hidden scores.
            tmp[np.broadcast_to(mask, tmp.shape)] = 0.0
        return (tmp,)

    return Tensor._from_op(data, (x,), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [Tensor.ensure(t) for t in tensors]
    if not tensors:
        raise ValueError("stack needs at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(piece, axis=axis) for piece in pieces)

    return Tensor._from_op(data, tuple(tensors), backward)
