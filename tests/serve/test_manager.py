"""Tests for checkpoint resolution and the warm-model LRU."""

import shutil

import numpy as np
import pytest

from repro.api import ArtifactStore, Predictor
from repro.serve import STORE_PREFIX, ModelManager, ModelNotFound


def _put_checkpoint(store: ArtifactStore, key: str, source) -> None:
    target = store.path("checkpoints", key)
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(source, target)


class TestResolution:
    def test_path_ref(self, served_checkpoint):
        manager = ModelManager()
        assert manager.resolve(str(served_checkpoint)) == served_checkpoint

    def test_missing_path_raises(self, tmp_path):
        manager = ModelManager()
        with pytest.raises(ModelNotFound, match="neither a checkpoint file"):
            manager.resolve(str(tmp_path / "nope.npz"))

    def test_store_prefix_requires_store(self):
        manager = ModelManager(store=None)
        with pytest.raises(ModelNotFound, match="artifact store"):
            manager.resolve(f"{STORE_PREFIX}somekey")

    def test_store_prefix_resolves_checkpoint_key(self, served_checkpoint, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put_checkpoint(store, "warm", served_checkpoint)
        manager = ModelManager(store=store)
        assert manager.resolve(f"{STORE_PREFIX}warm").exists()

    def test_store_prefix_unknown_key_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        manager = ModelManager(store=store)
        with pytest.raises(ModelNotFound, match="no checkpoint"):
            manager.resolve(f"{STORE_PREFIX}missing")

    def test_bare_ref_falls_back_to_store_key(self, served_checkpoint, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        _put_checkpoint(store, "bare", served_checkpoint)
        manager = ModelManager(store=store)
        assert manager.resolve("bare").exists()


class TestWarmCache:
    def test_get_returns_warm_instance(self, served_checkpoint):
        manager = ModelManager()
        ref = str(served_checkpoint)
        first = manager.get(ref)
        second = manager.get(ref)
        assert first is second
        assert manager.loads_total == 1
        assert manager.warm_refs() == [ref]

    def test_mmap_load_matches_direct_load(
        self, served_checkpoint, reference_predictor, smoke_bundle
    ):
        manager = ModelManager()
        served = manager.get(str(served_checkpoint))
        test = smoke_bundle.test
        assert np.array_equal(
            served.predict(test.features[:8], test.receiver[:8]),
            reference_predictor.predict(test.features[:8], test.receiver[:8]),
        )

    def test_lru_evicts_least_recently_used(self, served_checkpoint, tmp_path):
        copies = []
        for name in ("a", "b", "c"):
            copy = tmp_path / f"{name}.npz"
            shutil.copy(served_checkpoint, copy)
            copies.append(str(copy))
        manager = ModelManager(capacity=2)
        manager.get(copies[0])
        manager.get(copies[1])
        manager.get(copies[0])  # refresh: copies[1] is now the oldest
        manager.get(copies[2])
        assert manager.warm_refs() == [copies[0], copies[2]]
        assert manager.evictions_total == 1
        # Re-requesting the evicted model reloads it.
        manager.get(copies[1])
        assert manager.loads_total == 4

    def test_explicit_evict(self, served_checkpoint):
        manager = ModelManager()
        ref = str(served_checkpoint)
        manager.get(ref)
        assert manager.evict(ref)
        assert not manager.evict(ref)
        assert manager.warm_refs() == []
        assert manager.evictions_total == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            ModelManager(capacity=0)

    def test_bad_checkpoint_error_propagates(self, tmp_path):
        # A metadata-less npz is found but rejected with the Predictor's
        # clean ValueError (the CLI turns this into exit code 2).
        path = tmp_path / "bare.npz"
        np.savez(path, weight=np.zeros((2, 2)))
        manager = ModelManager()
        with pytest.raises(ValueError, match="config metadata"):
            manager.get(str(path))


class TestPrecisionPolicy:
    def test_float32_manager_serves_float32_models(
        self, served_checkpoint, reference_predictor, smoke_bundle
    ):
        manager = ModelManager(precision="float32")
        served = manager.get(str(served_checkpoint))
        assert served.precision == "float32"
        parameters = dict(served.model.named_parameters())
        assert all(p.data.dtype == np.float32 for p in parameters.values())
        test = smoke_bundle.test
        np.testing.assert_allclose(
            served.predict(test.features[:8], test.receiver[:8]),
            reference_predictor.predict(test.features[:8], test.receiver[:8]),
            rtol=1e-3,
        )

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            ModelManager(precision="float16")


class TestDescribe:
    def test_describe_is_json_ready(self, served_checkpoint):
        manager = ModelManager()
        row = manager.describe(str(served_checkpoint))
        assert row["ref"] == str(served_checkpoint)
        assert row["task"] == "delay"
        assert row["precision"] == "float64"
        assert row["min_window_len"] == 64
        assert row["parameters"] > 0
        assert row["batch_size"] == manager.batch_size

    def test_describe_reuses_the_warm_model(self, served_checkpoint):
        manager = ModelManager()
        manager.describe(str(served_checkpoint))
        manager.describe(str(served_checkpoint))
        assert manager.loads_total == 1


def test_roundtrip_through_predictor_save(served_checkpoint, tmp_path, smoke_bundle):
    """A manager-loaded predictor can re-save, and the copy serves the
    same predictions (mmap aliasing must not leak into the payload)."""
    manager = ModelManager()
    served = manager.get(str(served_checkpoint))
    resaved = tmp_path / "resaved.npz"
    served.save(resaved)
    reloaded = Predictor.from_checkpoint(resaved)
    test = smoke_bundle.test
    assert np.array_equal(
        served.predict(test.features[:8], test.receiver[:8]),
        reloaded.predict(test.features[:8], test.receiver[:8]),
    )
