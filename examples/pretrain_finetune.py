#!/usr/bin/env python
"""Case 1: fine-tune a pre-trained NTT to unseen cross-traffic.

Reproduces the story of Tables 1 and 2 on one topology via the
``repro.api`` facade: pre-train on clean traffic (cached in the artifact
store), then adapt to an environment with TCP cross-traffic using only a
small fine-tuning dataset — comparing decoder-only fine-tuning against
training a fresh model from scratch.

Run::

    python examples/pretrain_finetune.py
    python examples/pretrain_finetune.py --scale small --fraction 0.2
"""

from __future__ import annotations

import argparse

from repro.api import (
    Experiment,
    ExperimentSpec,
    FinetuneMode,
    train_delay_from_scratch,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument(
        "--fraction", type=float, default=0.1,
        help="fraction of the fine-tuning data to use (paper: 0.1)",
    )
    args = parser.parse_args()

    exp = Experiment(ExperimentSpec(scenario="case1", scale=args.scale))
    scale = exp.scale

    print("== Pre-training on the clean (no cross-traffic) environment")
    pre = exp.pretrained()
    print(f"   pre-training delay MSE: {pre.test_mse_scaled:.4f} x1e-3 s^2")

    print(f"== Building the case-1 dataset ({int(args.fraction * 100)}% sample)")
    case1 = exp.bundle().small_fraction(args.fraction)
    print(f"   {len(case1.train)} fine-tuning windows, {len(case1.test)} test windows")

    print("== Fine-tuning the pre-trained model (decoder only)")
    finetuned = exp.finetuned(
        task="delay", mode=FinetuneMode.DECODER_ONLY, fraction=args.fraction
    )
    print(
        f"   MSE {finetuned.test_mse_scaled:.4f} x1e-3 "
        f"in {finetuned.training_time:.0f}s of training"
    )

    print("== Training the same architecture from scratch on the same data")
    scratch = train_delay_from_scratch(
        scale.model_config(), pre.pipeline, case1, settings=scale.finetune_settings
    )
    print(
        f"   MSE {scratch.test_mse_scaled:.4f} x1e-3 "
        f"in {scratch.training_time:.0f}s of training"
    )

    print("== Verdict")
    ratio = scratch.test_mse / max(finetuned.test_mse, 1e-12)
    speedup = scratch.training_time / max(finetuned.training_time, 1e-9)
    print(
        f"   pre-training gives {ratio:.2f}x lower error and "
        f"{speedup:.1f}x faster adaptation on this run"
    )


if __name__ == "__main__":
    main()
