"""Serving telemetry: throughput, batch occupancy, tail latency.

One :class:`ServingMetrics` instance is shared by the whole serving
runtime — the HTTP front records request latencies, the
:class:`~repro.serve.batcher.MicroBatcher` records flush sizes — and a
thread-safe :meth:`snapshot` backs both the ``/metrics`` endpoint and
the serving benchmark's reported numbers.

Since the observability PR the counters and histograms live in a
:class:`~repro.obs.metrics.MetricsRegistry` (per-instance by default,
so parallel servers in one process never collide), which buys the
serving runtime the shared snapshot/merge machinery and
:meth:`to_prometheus` — the Prometheus text rendering of ``/metrics``
— for free.  The JSON :meth:`snapshot` shape is unchanged from the
pre-registry implementation.

Latencies additionally live in a bounded ring (the most recent
:data:`LATENCY_WINDOW` requests), so percentiles track current
behaviour instead of averaging over the process lifetime; counters are
monotone for the lifetime rates.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.obs.metrics import MetricsRegistry, merge_snapshots, prometheus_text

__all__ = ["ServingMetrics", "LATENCY_WINDOW", "OCCUPANCY_BUCKETS"]

#: Ring size for the latency percentile window.
LATENCY_WINDOW = 8192

#: Upper edges (inclusive) of the batch-occupancy histogram, in windows
#: per fused forward pass.  The last bucket is open-ended.
OCCUPANCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)

_PERCENTILES = (50.0, 95.0, 99.0)


class ServingMetrics:
    """Thread-safe counters and reservoirs for the serving runtime."""

    def __init__(self, clock=time.monotonic, registry: MetricsRegistry | None = None):
        self._clock = clock
        self._started = clock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter("serve.requests_total")
        self._predictions = self.registry.counter("serve.predictions_total")
        self._batches = self.registry.counter("serve.batches_total")
        self._errors = self.registry.counter("serve.errors_total")
        self._rejected = self.registry.counter("serve.rejected_total")
        self._occupancy = self.registry.histogram(
            "serve.batch_windows", buckets=OCCUPANCY_BUCKETS
        )
        self._latency = self.registry.histogram("serve.request_latency_seconds")
        self._lock = threading.Lock()  # guards the percentile ring
        self._latencies = deque(maxlen=LATENCY_WINDOW)

    # -- lifetime counters (read by tests and the serving benchmark) --------------

    @property
    def requests_total(self) -> int:
        return int(self._requests.value)

    @property
    def predictions_total(self) -> int:
        return int(self._predictions.value)

    @property
    def batches_total(self) -> int:
        return int(self._batches.value)

    @property
    def errors_total(self) -> int:
        return int(self._errors.value)

    @property
    def rejected_total(self) -> int:
        return int(self._rejected.value)

    # -- recording ----------------------------------------------------------------

    def record_batch(self, n_requests: int, n_windows: int) -> None:
        """One coalesced flush: ``n_requests`` callers, ``n_windows`` rows."""
        self._batches.inc()
        self._predictions.inc(n_windows)
        self._occupancy.observe(n_windows)

    def record_rejected(self) -> None:
        """One request shed at the saturation cap (HTTP 503)."""
        self._rejected.inc()

    def record_request(self, latency_s: float, error: bool = False) -> None:
        """One served ``/predict`` request (end-to-end seconds)."""
        self._requests.inc()
        if error:
            self._errors.inc()
            return
        self._latency.observe(latency_s)
        with self._lock:
            self._latencies.append(float(latency_s))

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of every metric (the ``/metrics`` payload)."""
        elapsed = max(self._clock() - self._started, 1e-9)
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
        occupancy = list(self._occupancy.counts)
        requests = self.requests_total
        predictions = self.predictions_total
        batches = self.batches_total
        snapshot = {
            "uptime_s": elapsed,
            "requests_total": requests,
            "predictions_total": predictions,
            "batches_total": batches,
            "errors_total": self.errors_total,
            "rejected_total": self.rejected_total,
            "predictions_per_s": predictions / elapsed,
            "requests_per_s": requests / elapsed,
        }
        snapshot["mean_batch_windows"] = predictions / batches if batches else 0.0
        labels = [f"<={edge}" for edge in OCCUPANCY_BUCKETS] + [
            f">{OCCUPANCY_BUCKETS[-1]}"
        ]
        snapshot["batch_occupancy"] = dict(zip(labels, occupancy))
        if latencies.size:
            p50, p95, p99 = np.percentile(latencies, _PERCENTILES)
            snapshot["latency_ms"] = {
                "p50": p50 * 1e3,
                "p95": p95 * 1e3,
                "p99": p99 * 1e3,
                "max": float(latencies.max()) * 1e3,
                "window": int(latencies.size),
            }
        else:
            snapshot["latency_ms"] = {"window": 0}
        return snapshot

    def to_prometheus(self, *extra_snapshots: dict) -> str:
        """Render everything in the Prometheus text format (0.0.4).

        ``extra_snapshots`` are additional registry snapshots merged in
        — the HTTP front passes the model manager's load/eviction
        counters and, when observability is on, the process-global
        registry, so one scrape covers the whole process.  Derived
        values the JSON snapshot reports (rates, windowed percentiles)
        are refreshed into gauges first so text scrapes see them too.
        """
        snapshot = self.snapshot()
        self.registry.gauge("serve.uptime_seconds").set(snapshot["uptime_s"])
        self.registry.gauge("serve.predictions_per_second").set(
            snapshot["predictions_per_s"]
        )
        self.registry.gauge("serve.requests_per_second").set(snapshot["requests_per_s"])
        self.registry.gauge("serve.mean_batch_windows").set(
            snapshot["mean_batch_windows"]
        )
        latency = snapshot["latency_ms"]
        if latency["window"]:
            for quantile, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                self.registry.gauge(
                    "serve.request_latency_window_seconds", quantile=quantile
                ).set(latency[key] / 1e3)
        return prometheus_text(
            merge_snapshots(self.registry.snapshot(), *extra_snapshots)
        )
