"""Whole-program view for interprocedural lint rules.

Per-file AST rules (``repro.lint.checks``) cannot see that a wall-clock
read two call hops away from ``stable_hash`` still poisons a cache key,
or that a registered stage's behaviour changed through a helper it
calls.  This module builds the shared layer those analyses stand on:

* module-level **name binding** — imports (absolute and relative,
  aliased or not), ``def``/``class`` statements and simple ``g = f``
  aliases, per module;
* an intra-package **call graph** — every call site in every function
  resolved (where syntactically possible) to the fully-qualified
  function it targets, including ``self.method()`` dispatch and
  re-exports followed through ``__init__`` bindings;
* **transitive closures** over those edges, for callee-set fingerprints
  and source→sink chains.

Resolution is name-based and conservative: calls through instances,
dynamic dispatch, or external libraries resolve to ``None`` and simply
end the analysis there — the same trade the per-file rules make (high
signal, zero imports executed).

Indexes are cached per tree root keyed by a file stat signature, so one
lint run over N files builds the program view once, and repeated
``run_lint`` calls in one process (the test suite) reuse it until a
file changes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramIndex",
    "attr_chain",
    "module_name_for",
    "program_index_for_root",
]

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``np.random.seed`` → ``["np", "random", "seed"]``; ``None`` if the
    expression is not a plain Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def module_name_for(scope_path: str) -> str:
    """Dotted module name from a lint scope path.

    ``repro/api/stages.py`` → ``repro.api.stages``;
    ``repro/lint/__init__.py`` → ``repro.lint``.
    """
    parts = list(Path(scope_path).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, after resolution."""

    raw: str  # dotted source text of the callee ("hashing.stable_hash")
    callee: Optional[str]  # resolved qname ("repro.api.hashing:stable_hash")
    line: int
    col: int
    implicit_self: bool  # True for self.m(...) → positional args shift by one


@dataclass
class FunctionInfo:
    """One function (or the module-body pseudo-function) in the program."""

    qname: str  # "<module dotted>:<local qualname>"
    module: str
    local: str  # "f", "Cls.m", "outer.inner", or MODULE_BODY
    scope_path: str
    node: ast.AST  # FunctionDef/AsyncFunctionDef, or Module for MODULE_BODY
    class_name: Optional[str] = None
    params: Tuple[str, ...] = ()
    calls: List[CallSite] = field(default_factory=list)

    @property
    def display(self) -> str:
        return self.local


@dataclass
class ModuleInfo:
    """One parsed module: bindings plus the functions defined in it."""

    name: str
    scope_path: str
    path: Path
    tree: ast.Module
    is_package: bool
    bindings: Dict[str, str] = field(default_factory=dict)  # local → dotted target
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)  # local qual → info


def _own_statements(root: ast.AST) -> Iterable[ast.stmt]:
    """Statements belonging to ``root``'s own body, not to nested
    function definitions (classes are transparent: their bodies execute
    at module level)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.stmt):
            yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _collect_bindings(module: ModuleInfo) -> None:
    """Module-level name binding: imports, defs, classes, plain aliases."""
    pkg_parts = module.name.split(".") if module.name else []
    if not module.is_package:
        pkg_parts = pkg_parts[:-1]
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    module.bindings[alias.asname] = alias.name
                else:
                    # `import x.y` binds `x`; chains through it resolve
                    # against the full dotted path naturally.
                    root = alias.name.split(".", 1)[0]
                    module.bindings[root] = root
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                base = pkg_parts[: len(pkg_parts) - (stmt.level - 1)]
            else:
                base = []
            target_mod = ".".join(base + ([stmt.module] if stmt.module else []))
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.bindings[local] = (
                    f"{target_mod}.{alias.name}" if target_mod else alias.name
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            module.bindings[stmt.name] = f"{module.name}.{stmt.name}"
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
            # `g = f` module-level alias of an already-bound name.
            target = module.bindings.get(stmt.value.id)
            if target:
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        module.bindings[tgt.id] = target


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    args = node.args
    return tuple(
        a.arg for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    )


def _collect_functions(module: ModuleInfo) -> None:
    """Register every function with a qualname path; classes contribute a
    path segment, nested defs contribute their parent function's name."""

    def visit(node: ast.AST, prefix: List[str], class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = ".".join(prefix + [child.name])
                module.functions[local] = FunctionInfo(
                    qname=f"{module.name}:{local}",
                    module=module.name,
                    local=local,
                    scope_path=module.scope_path,
                    node=child,
                    class_name=class_name,
                    params=_param_names(child),
                )
                visit(child, prefix + [child.name], class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, prefix + [child.name], child.name)
            else:
                visit(child, prefix, class_name)

    visit(module.tree, [], None)
    module.functions[MODULE_BODY] = FunctionInfo(
        qname=f"{module.name}:{MODULE_BODY}",
        module=module.name,
        local=MODULE_BODY,
        scope_path=module.scope_path,
        node=module.tree,
        class_name=None,
        params=(),
    )


class ProgramIndex:
    """Symbol resolution and call edges over one source tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        # Analysis caches, populated lazily by taint/fingerprint layers.
        self.taint_cache: Optional[dict] = None
        self.fingerprint_cache: Optional[dict] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[Path, str]]) -> "ProgramIndex":
        """Index ``(path, scope_path)`` pairs (``collect_files`` output).

        Files that fail to parse are skipped — the lint engine reports
        those as ``parse`` findings through its own path.
        """
        index = cls()
        for path, scope_path in files:
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, OSError, UnicodeDecodeError):
                continue
            name = module_name_for(scope_path)
            module = ModuleInfo(
                name=name,
                scope_path=scope_path,
                path=path,
                tree=tree,
                is_package=Path(scope_path).name == "__init__.py",
            )
            # Last writer wins on (exotic) duplicate module names; the
            # deterministic collect_files order keeps this stable.
            index.modules[name] = module
        for module in index.modules.values():
            _collect_bindings(module)
            _collect_functions(module)
            for info in module.functions.values():
                index.functions[info.qname] = info
        for module in index.modules.values():
            for info in module.functions.values():
                index._resolve_calls(module, info)
        return index

    def _resolve_calls(self, module: ModuleInfo, info: FunctionInfo) -> None:
        for node in _own_statements_and_exprs(info.node):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            callee, implicit_self = self._resolve_chain(module, info, chain)
            info.calls.append(
                CallSite(
                    raw=".".join(chain),
                    callee=callee,
                    line=node.lineno,
                    col=node.col_offset,
                    implicit_self=implicit_self,
                )
            )

    # -- resolution ---------------------------------------------------------

    def _resolve_chain(
        self, module: ModuleInfo, info: FunctionInfo, chain: List[str]
    ) -> Tuple[Optional[str], bool]:
        """Resolve a dotted call chain from inside ``info`` to a qname."""
        if (
            len(chain) == 2
            and chain[0] in ("self", "cls")
            and info.class_name is not None
        ):
            local = f"{info.class_name}.{chain[1]}"
            target = module.functions.get(local)
            return (target.qname if target else None), True
        head, rest = chain[0], chain[1:]
        # Nested defs: a bare name may target a sibling/child function in
        # the enclosing def chain, innermost scope first.
        if not rest:
            parts = info.local.split(".")
            for depth in range(len(parts), 0, -1):
                candidate = ".".join(parts[:depth] + [head])
                target = module.functions.get(candidate)
                if target is not None:
                    return target.qname, False
        bound = module.bindings.get(head)
        if bound is None:
            return None, False
        dotted = ".".join([bound] + rest)
        return self._resolve_symbol(dotted, frozenset()), False

    def _resolve_symbol(
        self, dotted: str, visited: frozenset
    ) -> Optional[str]:
        """A dotted absolute path → the qname it names, following
        re-export bindings (``from .engine import run_lint`` in an
        ``__init__``) with a cycle guard."""
        if dotted in visited:
            return None
        for name in sorted(self.modules, key=len, reverse=True):
            if dotted == name:
                return None  # names a module, not a function
            if not dotted.startswith(name + "."):
                continue
            local = dotted[len(name) + 1:]
            target = self.modules[name].functions.get(local)
            if target is not None:
                return target.qname
            head, _, tail = local.partition(".")
            bound = self.modules[name].bindings.get(head)
            if bound is not None:
                onward = f"{bound}.{tail}" if tail else bound
                return self._resolve_symbol(onward, visited | {dotted})
            return None
        return None

    # -- queries ------------------------------------------------------------

    def get(self, qname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qname)

    def functions_in(self, scope_path: str) -> List[FunctionInfo]:
        return [
            info
            for info in self.functions.values()
            if info.scope_path == scope_path
        ]

    def callers_of(self, qname: str) -> List[FunctionInfo]:
        return [
            info
            for info in self.functions.values()
            if any(site.callee == qname for site in info.calls)
        ]

    def transitive_callees(self, qname: str) -> List[str]:
        """Every in-tree function reachable from ``qname`` via resolved
        call edges (excluding itself), in sorted order."""
        seen: Set[str] = set()
        frontier = [qname]
        while frontier:
            current = frontier.pop()
            info = self.functions.get(current)
            if info is None:
                continue
            for site in info.calls:
                if site.callee is not None and site.callee not in seen:
                    if site.callee != qname:
                        seen.add(site.callee)
                        frontier.append(site.callee)
        return sorted(seen)


def _own_statements_and_exprs(root: ast.AST) -> Iterable[ast.AST]:
    """Every node in ``root``'s own body, not descending into nested
    function/class definitions (each is visited separately)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


# -- per-root cache ---------------------------------------------------------

_INDEX_CACHE: Dict[Path, Tuple[tuple, ProgramIndex]] = {}


def _tree_files(root: Path) -> List[Tuple[Path, str]]:
    return [
        (path, path.relative_to(root).as_posix())
        for path in sorted(root.rglob("*.py"))
        if "__pycache__" not in path.parts
    ]


def program_index_for_root(root: Path) -> ProgramIndex:
    """The (cached) :class:`ProgramIndex` over every ``*.py`` under
    ``root``, rebuilt whenever any file's size or mtime changes."""
    root = Path(root).resolve()
    files = _tree_files(root)
    signature = tuple(
        (scope, stat.st_size, stat.st_mtime_ns)
        for path, scope in files
        for stat in (path.stat(),)
    )
    cached = _INDEX_CACHE.get(root)
    if cached is not None and cached[0] == signature:
        return cached[1]
    index = ProgramIndex.build(files)
    _INDEX_CACHE[root] = (signature, index)
    return index
