"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.core import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "late")
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(3.0, seen.append, "last")
    sim.run()
    assert seen == ["early", "late", "last"]


def test_same_time_fifo_order():
    sim = Simulator()
    seen = []
    for label in range(5):
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_priority_breaks_ties():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "low", priority=1)
    sim.schedule(1.0, seen.append, "high", priority=0)
    sim.run()
    assert seen == ["high", "low"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.5]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "in")
    sim.schedule(5.0, seen.append, "out")
    sim.run(until=2.0)
    assert seen == ["in"]
    assert sim.now == 2.0
    assert sim.pending == 1


def test_run_until_then_resume():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(3.0, seen.append, 3)
    sim.run(until=2.0)
    sim.run()
    assert seen == [1, 3]


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_cancelled_event_skipped():
    sim = Simulator()
    seen = []
    event = sim.schedule(1.0, seen.append, "cancelled")
    sim.schedule(2.0, seen.append, "kept")
    event.cancel()
    sim.run()
    assert seen == ["kept"]


def test_cancel_from_within_event():
    sim = Simulator()
    seen = []
    late = sim.schedule(2.0, seen.append, "late")
    sim.schedule(1.0, late.cancel)
    sim.run()
    assert seen == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_nonfinite_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_max_events_limits_execution():
    sim = Simulator()
    seen = []
    for index in range(10):
        sim.schedule(float(index), seen.append, index)
    sim.run(max_events=4)
    assert seen == [0, 1, 2, 3]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for index in range(3):
        sim.schedule(float(index), lambda: None)
    sim.run()
    assert sim.events_processed == 3


@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60))
def test_property_execution_order_is_sorted(delays):
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: executed.append(d))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


def test_reentrant_run_rejected():
    sim = Simulator()

    def inner():
        sim.run()

    sim.schedule(1.0, inner)
    with pytest.raises(SimulationError):
        sim.run()
