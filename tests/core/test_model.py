"""Tests for the NTT model and task heads."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationSpec
from repro.core.features import FeatureSpec
from repro.core.model import NTT, NTTConfig, NTTForDelay, NTTForMCT


@pytest.fixture
def config():
    return NTTConfig.smoke()


@pytest.fixture
def batch(rng, config):
    window_len = config.aggregation.seq_len + 8  # windows may be longer
    features = rng.normal(size=(4, window_len, 3))
    receiver = rng.integers(0, 4, size=(4, window_len))
    return features, receiver


class TestConfig:
    def test_heads_divide_d_model(self):
        with pytest.raises(ValueError):
            NTTConfig(d_model=10, n_heads=3)

    def test_presets_construct(self):
        for preset in (NTTConfig.small, NTTConfig.paper, NTTConfig.smoke):
            config = preset()
            assert config.aggregation.seq_len > 0

    def test_preset_overrides(self):
        config = NTTConfig.small(d_model=32, n_heads=2)
        assert config.d_model == 32


class TestNTTForward:
    def test_output_shape(self, config, batch):
        model = NTT(config)
        out = model(*batch)
        assert out.shape == (4, config.aggregation.out_len, config.d_model)

    def test_uses_last_seq_len_packets(self, config, batch, rng):
        """Packets before the model's sequence window must not matter."""
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        perturbed = features.copy()
        perturbed[:, : features.shape[1] - config.aggregation.seq_len, :] += 100.0
        assert np.allclose(model(perturbed, receiver).data, out)

    def test_window_too_short_rejected(self, config, rng):
        model = NTT(config)
        short = rng.normal(size=(2, config.aggregation.seq_len - 1, 3))
        with pytest.raises(ValueError):
            model(short, np.zeros((2, config.aggregation.seq_len - 1), dtype=int))

    def test_requires_3d_features(self, config):
        with pytest.raises(ValueError):
            NTT(config)(np.zeros((4, 3)), np.zeros((4,), dtype=int))

    def test_masked_delay_invisible(self, config, batch):
        """The model's output must not depend on the masked delay value
        (otherwise the pre-training task leaks its label)."""
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        leaked = features.copy()
        leaked[:, -1, 2] = 1e6  # the delay that should be masked
        assert np.allclose(model(leaked, receiver).data, out)

    def test_previous_delays_visible(self, config, batch):
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        changed = features.copy()
        changed[:, -2, 2] += 5.0  # an unmasked delay
        assert not np.allclose(model(changed, receiver).data, out)

    def test_receiver_ids_matter(self, config, batch):
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        other = (receiver + 1) % 4
        assert not np.allclose(model(features, other).data, out)

    def test_without_receiver_spec_ignores_ids(self, batch):
        config = NTTConfig.smoke(features=FeatureSpec.without_receiver())
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        assert np.allclose(model(features, (receiver + 1) % 4).data, out)

    def test_without_delay_spec_ignores_delays(self, batch):
        config = NTTConfig.smoke(features=FeatureSpec.without_delay())
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        changed = features.copy()
        changed[:, :, 2] += 3.0
        assert np.allclose(model(changed, receiver).data, out)

    def test_without_size_spec_ignores_sizes(self, batch):
        config = NTTConfig.smoke(features=FeatureSpec.without_size())
        model = NTT(config)
        model.eval()
        features, receiver = batch
        out = model(features, receiver).data
        changed = features.copy()
        changed[:, :, 1] += 3.0
        assert np.allclose(model(changed, receiver).data, out)

    def test_deterministic_same_seed(self, batch):
        a = NTT(NTTConfig.smoke())
        b = NTT(NTTConfig.smoke())
        a.eval(), b.eval()
        features, receiver = batch
        assert np.allclose(a(features, receiver).data, b(features, receiver).data)

    def test_different_seed_differs(self, batch):
        from dataclasses import replace

        a = NTT(NTTConfig.smoke())
        b = NTT(replace(NTTConfig.smoke(), seed=1))
        a.eval(), b.eval()
        features, receiver = batch
        assert not np.allclose(a(features, receiver).data, b(features, receiver).data)


class TestTaskHeads:
    def test_delay_head_shape(self, config, batch):
        model = NTTForDelay(config)
        out = model(*batch)
        assert out.shape == (4,)

    def test_delay_head_trainable(self, config, batch):
        model = NTTForDelay(config)
        model(*batch).sum().backward()
        assert all(p.grad is not None for p in model.decoder.parameters())

    def test_reset_decoder_changes_weights(self, config):
        model = NTTForDelay(config)
        before = model.decoder.mlp[0].weight.data.copy()
        model.reset_decoder(seed=99)
        assert not np.allclose(model.decoder.mlp[0].weight.data, before)

    def test_mct_head_shape(self, config, batch, rng):
        model = NTTForMCT(config, NTT(config))
        sizes = rng.normal(size=4)
        out = model(*batch, sizes)
        assert out.shape == (4,)

    def test_mct_head_uses_message_size(self, config, batch, rng):
        model = NTTForMCT(config, NTT(config))
        model.eval()
        features, receiver = batch
        a = model(features, receiver, np.zeros(4)).data
        b = model(features, receiver, np.ones(4)).data
        assert not np.allclose(a, b)

    def test_mct_shares_encoder(self, config, batch, rng):
        delay_model = NTTForDelay(config)
        mct_model = NTTForMCT(config, delay_model.ntt)
        assert mct_model.ntt is delay_model.ntt
        # Training the MCT decoder must not touch the shared encoder.
        encoder_state = {
            name: value.copy() for name, value in delay_model.ntt.state_dict().items()
        }
        features, receiver = batch
        out = mct_model(features, receiver, rng.normal(size=4))
        out.sum().backward()
        # Gradients exist on the encoder but decoder-only optimizers
        # would ignore them; state unchanged without an optimizer step.
        for name, value in delay_model.ntt.state_dict().items():
            assert np.array_equal(value, encoder_state[name])
