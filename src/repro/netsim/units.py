"""Unit helpers.

All simulator-internal quantities use SI base units: seconds, bits per
second, bytes.  These helpers exist so scenario code can read like the
paper ("30 Mbps bottleneck", "1000-packet queue") without magic numbers.
"""

from __future__ import annotations

__all__ = [
    "kbps",
    "mbps",
    "gbps",
    "milliseconds",
    "microseconds",
    "BYTE",
    "MTU_BYTES",
    "serialization_delay",
]

#: Bits per byte.
BYTE = 8

#: Default maximum transmission unit used by the message senders, in bytes.
MTU_BYTES = 1500


def kbps(value: float) -> float:
    """Kilobits per second → bits per second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """Megabits per second → bits per second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """Gigabits per second → bits per second."""
    return float(value) * 1e9


def milliseconds(value: float) -> float:
    """Milliseconds → seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Microseconds → seconds."""
    return float(value) * 1e-6


def serialization_delay(size_bytes: int, rate_bps: float) -> float:
    """Time to clock ``size_bytes`` onto a link of ``rate_bps``.

    Raises :class:`ValueError` for non-positive rates because a zero-rate
    link would silently stall the event loop.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    if size_bytes < 0:
        raise ValueError(f"packet size must be non-negative, got {size_bytes}")
    return size_bytes * BYTE / rate_bps
