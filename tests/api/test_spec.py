"""Tests for declarative experiment specs and their content hashes."""

import pytest

from repro.api import ExperimentSpec, WindowConfig
from repro.api.hashing import stable_hash, to_jsonable
from repro.api.spec import (
    ntt_config_from_dict,
    ntt_config_to_dict,
    scenario_config_from_dict,
    scenario_config_to_dict,
)
from repro.core.model import NTTConfig
from repro.netsim.scenarios import ScenarioConfig


class TestStableHash:
    def test_deterministic(self):
        payload = {"b": 2, "a": [1.5, "x", None], "c": (True, False)}
        assert stable_hash(payload) == stable_hash(payload)

    def test_key_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_dataclasses_tagged_by_type(self):
        # Two different config types with identical fields must differ.
        assert stable_hash(WindowConfig(64, 4)) != stable_hash({"window_len": 64, "stride": 4})

    def test_plain_objects_canonicalised_without_ids(self):
        from repro.netsim.workloads import FixedMessageSizes

        first = to_jsonable(FixedMessageSizes(100))
        second = to_jsonable(FixedMessageSizes(100))
        assert first == second
        assert first["__class__"] == "FixedMessageSizes"


class TestExperimentSpec:
    def test_defaults_hash_like_explicit_equivalents(self):
        implicit = ExperimentSpec(scale="smoke")
        explicit = ExperimentSpec(scale="smoke", n_runs=1)  # smoke default
        assert implicit.spec_hash == explicit.spec_hash

    def test_hash_stable_across_instances(self):
        assert (
            ExperimentSpec(scenario="case1", scale="smoke").spec_hash
            == ExperimentSpec(scenario="case1", scale="smoke").spec_hash
        )

    def test_seed_changes_hash(self):
        assert (
            ExperimentSpec(scale="smoke").spec_hash
            != ExperimentSpec(scale="smoke", seed=1).spec_hash
        )

    def test_window_changes_hash(self):
        assert (
            ExperimentSpec(scale="smoke").spec_hash
            != ExperimentSpec(scale="smoke", window=WindowConfig(64, 2)).spec_hash
        )

    def test_spec_usable_as_dict_key(self):
        table = {ExperimentSpec(scale="smoke"): "value"}
        assert table[ExperimentSpec(scale="smoke")] == "value"

    def test_unknown_scenario_rejected_with_choices(self):
        with pytest.raises(ValueError, match="pretrain"):
            ExperimentSpec(scenario="bogus", scale="smoke")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="smoke"):
            ExperimentSpec(scale="enormous")

    def test_to_scale_applies_overrides(self):
        spec = ExperimentSpec(
            scale="smoke", n_runs=3, window=WindowConfig(64, 2), fine_fraction=0.5
        )
        scale = spec.to_scale()
        assert scale.n_runs == 3
        assert scale.window.stride == 2
        assert scale.fine_fraction == 0.5

    def test_model_override_resolves(self):
        config = NTTConfig.smoke(n_layers=3)
        spec = ExperimentSpec(scale="smoke", model=config)
        assert spec.to_scale().model_config().n_layers == 3
        assert spec.spec_hash != ExperimentSpec(scale="smoke").spec_hash

    def test_dict_roundtrip(self):
        spec = ExperimentSpec(
            scenario="case2",
            scale="smoke",
            seed=7,
            window=WindowConfig(64, 2),
            model=NTTConfig.smoke(),
            fine_fraction=0.2,
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


class TestConfigConverters:
    def test_ntt_config_roundtrip(self):
        config = NTTConfig.paper()
        assert ntt_config_from_dict(ntt_config_to_dict(config)) == config

    def test_scenario_config_roundtrip(self):
        config = ScenarioConfig.small("case2", seed=3)
        restored = scenario_config_from_dict(scenario_config_to_dict(config))
        assert restored == config
