"""Stage execution: one code path for serial runs, worker pools and tables.

Each campaign task is executed by :func:`run_task`, either in-process
(the engine's serial path hands in a shared
:class:`~repro.api.experiment.Experiment`) or inside a
``ProcessPoolExecutor`` worker, where the module-level function is
imported by reference and rebuilds the experiment from the task's JSON
payload.  Dispatch goes through the
:data:`~repro.api.stages.STAGE_REGISTRY` — built-in, extension and
user-registered stages all execute the same way.  Heavy artifacts never
cross the process boundary — they flow through the content-addressed
:class:`~repro.api.store.ArtifactStore`; task results are small
dictionaries of scalars.
"""

from __future__ import annotations

import contextlib
import importlib
import json
import os
import threading
import time
import traceback
from pathlib import Path

import repro.obs as obs

# Importing the module registers the built-in stages (worker processes
# start from a bare interpreter).
import repro.runtime.stages  # noqa: F401
from repro.api.experiment import Experiment
from repro.api.spec import ExperimentSpec
from repro.api.stages import STAGE_REGISTRY
from repro.api.store import ArtifactStore
from repro.runtime.policy import RetryPolicy
from repro.testing.faults import maybe_inject
from repro.utils.clock import wall_time_unix

__all__ = ["run_task", "execute_stage", "heartbeat_path"]


def execute_stage(
    stage: str, experiment: Experiment, params: dict, inputs: dict | None = None
):
    """Run one registered stage; returns ``(cache_hit, result_dict)``.

    Unknown stages raise a ``ValueError`` listing the registered stage
    names.  ``inputs`` maps dependency task ids to their results.
    """
    entry = STAGE_REGISTRY.get(stage)
    return entry.run(experiment, dict(inputs or {}), params)


def _ensure_stage_importable(payload: dict) -> None:
    """Import the module that registered this payload's stage.

    Worker processes start from a bare interpreter: built-in and
    extension stages register via the imports above, but a custom stage
    defined in some other module must be imported before dispatch.  The
    planner records the registering module in the payload (``__main__``
    cannot be re-imported — there the pool relies on fork inheriting the
    parent's registry, the default on Linux).
    """
    module = payload.get("stage_module")
    if payload["stage"] in STAGE_REGISTRY or not module or module == "__main__":
        return
    importlib.import_module(module)


def _retry_backoff(payload: dict) -> float:
    """Jittered backoff before a retry attempt, drawn from the task's
    spawned seed sequence so campaign behaviour is reproducible.

    The numbers come from the engine's :class:`RetryPolicy` riding in
    the payload; payloads without one (older planners, direct callers)
    get the default policy, which reproduces the historical backoff
    byte-for-byte.
    """
    policy = RetryPolicy.from_payload(payload.get("retry_policy"))
    return policy.backoff_s(
        payload.get("seed_entropy", 0),
        tuple(payload.get("spawn_key", ())),
        payload.get("attempt", 0),
    )


def heartbeat_path(directory: str | os.PathLike, task_id: str) -> Path:
    """Where one task's heartbeat file lives (task ids hold ``:``,
    which stays filesystem-safe on Linux but reads badly — flatten)."""
    return Path(directory) / f"{task_id.replace(':', '_')}.json"


class _Heartbeat:
    """Liveness beacon for one pool task attempt.

    While the task executes, a daemon thread refreshes a small JSON file
    (``{pid, task_id, attempt, started_unix, updated_unix}``) under the
    engine-provided scratch directory.  The engine's reaper uses
    ``started_unix`` to tell a *hung* task from one still queued behind
    a busy pool, and ``pid`` to kill the right worker.  Writes go
    through a temp file + ``os.replace`` so the reaper never reads a
    torn beat.  The beat thread only reads attributes set before it
    starts and touches no shared state — all mutation is file-level.
    """

    def __init__(self, payload: dict):
        directory = payload.get("heartbeat_dir")
        self._path = (
            heartbeat_path(directory, payload["id"]) if directory is not None else None
        )
        self._task_id = payload["id"]
        self._attempt = payload.get("attempt", 0)
        self._interval = float(payload.get("heartbeat_interval_s", 1.0))
        self._started = 0.0
        self._stop = threading.Event()
        self._thread = None

    def __enter__(self) -> "_Heartbeat":
        if self._path is None:
            return self
        self._started = wall_time_unix()
        self._write()  # first beat lands before the stage runs
        self._thread = threading.Thread(
            target=self._beat, name=f"heartbeat:{self._task_id}", daemon=True
        )
        self._thread.start()
        return self

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            self._write()

    def _write(self) -> None:
        doc = {
            "pid": os.getpid(),
            "task_id": self._task_id,
            "attempt": self._attempt,
            "started_unix": self._started,
            "updated_unix": wall_time_unix(),
        }
        temp = self._path.with_name(f".tmp-{os.getpid()}-{self._path.name}")
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            os.replace(temp, self._path)
        except OSError:
            # Heartbeats are advisory; a full disk must not fail the task.
            with contextlib.suppress(OSError):
                temp.unlink()

    def __exit__(self, *exc_info) -> None:
        if self._path is None:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._interval + 1.0)
        with contextlib.suppress(OSError):
            self._path.unlink()


def run_task(payload: dict, experiment: Experiment | None = None) -> dict:
    """Execute one task payload; never raises.

    Worker-pool entry point: with no ``experiment`` the spec and store
    are rebuilt from the payload (each worker process owns its own
    experiment context; artifacts are shared through the store).
    Failures come back as structured ``status: "error"`` records so the
    engine can retry and the manifest can record the traceback; retry
    attempts (``payload["attempt"] > 0``) back off with jitter first.

    When observability is enabled the whole execution runs inside a
    captured tracer span (stage-level spans nest under it) and the
    record additionally carries ``spans`` (the serialized span tree)
    and ``metrics`` (this task's registry delta) — both JSON, so they
    cross the process boundary like everything else and the engine can
    merge worker telemetry into the campaign manifest.
    """
    if payload.get("attempt", 0) > 0:
        time.sleep(_retry_backoff(payload))
    start = time.perf_counter()
    record = {"id": payload["id"], "stage": payload["stage"], "cache_hit": False}
    obs_on = obs.enabled()
    with contextlib.ExitStack() as stack:
        stack.enter_context(_Heartbeat(payload))
        if obs_on:
            registry = obs.get_registry()
            before = registry.snapshot()
            tracer = stack.enter_context(obs.capture_tracer())
            span = stack.enter_context(
                tracer.span(
                    "task:" + payload["id"],
                    task_id=payload["id"],
                    stage=payload["stage"],
                    worker=os.getpid(),
                    attempt=payload.get("attempt", 0),
                )
            )
        try:
            maybe_inject(payload["stage"], payload.get("attempt", 0))
            _ensure_stage_importable(payload)
            if experiment is None:
                spec = ExperimentSpec.from_dict(payload["spec"])
                root = payload.get("store_root")
                store = ArtifactStore(root) if root is not None else None
                experiment = Experiment(spec, store=store)
            hit, result = execute_stage(
                payload["stage"], experiment, payload["params"], payload.get("inputs")
            )
            record.update(status="done", cache_hit=bool(hit), result=result)
        except Exception as exc:  # noqa: BLE001 — crosses a process boundary
            record.update(
                status="error",
                error=traceback.format_exc(),
                error_type=type(exc).__name__,
            )
        if obs_on:
            span.set(status=record["status"], cache_hit=record["cache_hit"])
    if obs_on:
        record["spans"] = tracer.finished()
        record["metrics"] = obs.subtract(registry.snapshot(), before)
    record["wall_time_s"] = time.perf_counter() - start
    return record
