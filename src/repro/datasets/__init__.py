"""Dataset pipeline: simulator traces → windowed training arrays.

The paper feeds the NTT sequences of 1024 packets with four raw features
(timestamp, size, receiver ID, delay) and reserves a fraction of every
dataset for testing (§4).  This package turns :class:`repro.netsim.trace.Trace`
objects into exactly that.
"""

from repro.datasets.windows import WindowConfig, WindowDataset, windows_from_trace
from repro.datasets.normalize import FeatureScaler
from repro.datasets.generation import DatasetBundle, generate_dataset
from repro.datasets.splits import temporal_split

__all__ = [
    "WindowConfig",
    "WindowDataset",
    "windows_from_trace",
    "FeatureScaler",
    "DatasetBundle",
    "generate_dataset",
    "temporal_split",
]
