"""Weight initialisers.

Each function *returns* a freshly initialised array; layers wrap them in
:class:`~repro.nn.module.Parameter`.  RNGs are passed explicitly so model
construction is reproducible end-to-end.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros", "ones"]


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out)).

    The default initialiser for attention and feed-forward projections.
    """
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He uniform, appropriate before ReLU nonlinearities."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple, rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal initialiser (BERT-style embeddings)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def _fans(shape: tuple) -> tuple[int, int]:
    """Fan-in/fan-out for a weight of shape ``(in_features, out_features)``.

    The whole library stores linear weights in that orientation (so the
    forward pass is ``x @ W``), hence fan_in is the first axis.
    """
    if len(shape) < 1:
        raise ValueError("initialisers need at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    return fan_in, fan_out
