"""Tests for channel/link timing behaviour."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.units import mbps


def build_pair(rate=mbps(12), delay=0.001, queue=10):
    sim = Simulator()
    a = Node(sim, 0, "a")
    b = Node(sim, 1, "b")
    link = Link(sim, a, b, rate_bps=rate, propagation_delay=delay, queue_packets=queue)
    return sim, a, b, link


def test_delivery_time_is_serialization_plus_propagation():
    sim, a, b, link = build_pair()
    arrivals = []
    b.default_handler = lambda packet: arrivals.append(sim.now)
    packet = Packet(src=0, dst=1, size=1500)
    link.forward.send(packet)
    sim.run()
    # 1500 B over 12 Mbps = 1 ms serialization, + 1 ms propagation.
    assert arrivals == [pytest.approx(0.002)]


def test_back_to_back_packets_queue_behind_transmitter():
    sim, a, b, link = build_pair()
    arrivals = []
    b.default_handler = lambda packet: arrivals.append(sim.now)
    for seq in range(3):
        link.forward.send(Packet(src=0, dst=1, size=1500, seq=seq))
    sim.run()
    assert arrivals == [pytest.approx(0.002), pytest.approx(0.003), pytest.approx(0.004)]


def test_queue_overflow_drops():
    sim, a, b, link = build_pair(queue=2)
    # One transmitting + 2 queued fit; the rest drop.
    for seq in range(6):
        link.forward.send(Packet(src=0, dst=1, size=1500, seq=seq))
    assert link.forward.queue.stats.dropped == 3
    # Drops also aggregate simulation-wide through the threaded SimStats.
    assert sim.stats.packets_dropped == 3
    assert sim.stats.bytes_dropped == 3 * 1500
    sim.run()
    assert link.forward.packets_sent == 3


def test_channel_statistics():
    sim, a, b, link = build_pair()
    link.forward.send(Packet(src=0, dst=1, size=1500))
    sim.run()
    assert link.forward.bytes_sent == 1500
    assert link.forward.packets_sent == 1
    assert link.forward.utilization(elapsed=0.001) == pytest.approx(1.0)


def test_utilization_counts_only_started_transmissions():
    """A truncated run must not count still-queued packets as busy
    time (the fast path books serialization time at arrival)."""
    sim, a, b, link = build_pair(rate=mbps(12), delay=0.0)
    for seq in range(5):  # 1 ms serialization each
        link.forward.send(Packet(src=0, dst=1, size=1500, seq=seq))
    sim.run(until=0.0025)
    # Transmissions started by t=2.5 ms: at 0, 1 and 2 ms — 3 ms total.
    assert link.forward.utilization(elapsed=0.004) == pytest.approx(0.75)


def test_backward_channel_independent():
    sim, a, b, link = build_pair()
    forward_arrivals = []
    backward_arrivals = []
    b.default_handler = lambda packet: forward_arrivals.append(packet.seq)
    a.default_handler = lambda packet: backward_arrivals.append(packet.seq)
    link.forward.send(Packet(src=0, dst=1, size=100, seq=1))
    link.backward.send(Packet(src=1, dst=0, size=100, seq=2))
    sim.run()
    assert forward_arrivals == [1]
    assert backward_arrivals == [2]


def test_channel_from_and_other_end():
    sim, a, b, link = build_pair()
    assert link.channel_from(a) is link.forward
    assert link.channel_from(b) is link.backward
    assert link.other_end(a) is b
    stranger = Node(sim, 9, "stranger")
    with pytest.raises(ValueError):
        link.channel_from(stranger)
    with pytest.raises(ValueError):
        link.other_end(stranger)


def test_invalid_channel_parameters():
    sim = Simulator()
    a = Node(sim, 0)
    b = Node(sim, 1)
    with pytest.raises(ValueError):
        Link(sim, a, b, rate_bps=0, propagation_delay=0.001, queue_packets=5)
    with pytest.raises(ValueError):
        Link(sim, a, b, rate_bps=mbps(1), propagation_delay=-0.1, queue_packets=5)


def test_work_conserving_transmitter():
    """The transmitter never idles while packets wait."""
    sim, a, b, link = build_pair(rate=mbps(12), delay=0.0)
    arrivals = []
    b.default_handler = lambda packet: arrivals.append(sim.now)
    for seq in range(5):
        link.forward.send(Packet(src=0, dst=1, size=1500, seq=seq))
    sim.run()
    gaps = [arrivals[i + 1] - arrivals[i] for i in range(len(arrivals) - 1)]
    assert all(gap == pytest.approx(0.001) for gap in gaps)
