"""Fixture sink: the local stand-in for repro.api.hashing."""

import hashlib
import json


def stable_hash(obj, length=16):
    payload = json.dumps(obj, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:length]
