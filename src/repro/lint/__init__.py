"""repro.lint — static enforcement of the repo's runtime invariants.

The correctness story of this codebase rests on conventions that tests
can only probe dynamically: SeedSequence-only randomness, cache-key
purity of registered stages, allocation-free fused kernels, non-blocking
serving coroutines, lock-guarded cross-thread state.  This package
encodes them as AST rules over the source tree, with a pluggable rule
registry (mirroring the scenario/stage registries), justified inline
suppressions, and a committed baseline for grandfathered findings.

Entry points::

    repro lint                      # CLI: exit 0 clean / 1 findings / 2 usage
    from repro.lint import run_lint # library: LintReport

Importing this package registers the built-in rules.
"""

from .baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    discover_baseline,
    load_baseline,
    save_baseline,
)
from .context import SourceModule, load_module
from .engine import LintReport, collect_files, default_root, run_lint
from .findings import SEVERITIES, Finding
from .rules import LINT_RULES, LintRule, LintRuleRegistry, register_rule

from . import checks  # noqa: F401  (registers the built-in rules)

__all__ = [
    "BASELINE_FILENAME",
    "Finding",
    "LINT_RULES",
    "LintReport",
    "LintRule",
    "LintRuleRegistry",
    "SEVERITIES",
    "SourceModule",
    "apply_baseline",
    "collect_files",
    "default_root",
    "discover_baseline",
    "load_baseline",
    "load_module",
    "register_rule",
    "run_lint",
]
