"""The lint baseline: grandfathered findings, committed next to the code.

The baseline lets the lint gate turn on strict while pre-existing debt
is paid down incrementally: a finding listed here is reported as
*baselined* and does not fail the run; anything new does.  Entries are
matched by ``(rule, path, snippet)`` — never by line number — so
unrelated edits to a file do not invalidate its grandfathered entries,
while editing the offending line itself (even re-indenting it into a
different statement) surfaces the finding again for a fresh decision.

``repro lint --baseline-update`` rewrites the file from the current
run: new findings are added, fixed ones expire (pruned), and the entry
order is sorted so diffs stay reviewable.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Optional, Tuple

from .findings import Finding

__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_VERSION",
    "load_baseline",
    "save_baseline",
    "discover_baseline",
    "apply_baseline",
    "baseline_entries",
]

BASELINE_FILENAME = "lint-baseline.json"
BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str]  # (rule, path, snippet)


def load_baseline(path: Path) -> Counter:
    """Read a baseline file into a matchable key -> count Counter."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in payload.get("entries", []):
        key = (entry["rule"], entry["path"], entry["snippet"])
        counts[key] += int(entry.get("count", 1))
    return counts


def baseline_entries(findings: List[Finding]) -> List[dict]:
    """Aggregate findings into sorted baseline entries."""
    counts: Counter = Counter(
        (f.rule, f.path, f.snippet) for f in findings
    )
    return [
        {"rule": rule, "path": path, "snippet": snippet, "count": count}
        for (rule, path, snippet), count in sorted(counts.items())
    ]


def save_baseline(path: Path, findings: List[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "entries": baseline_entries(findings),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def discover_baseline(roots: List[Path]) -> Optional[Path]:
    """Find the nearest committed baseline above any lint root."""
    for root in roots:
        candidates = [root] if root.is_dir() else [root.parent]
        candidates += list(candidates[0].parents)
        for candidate in candidates:
            baseline = candidate / BASELINE_FILENAME
            if baseline.is_file():
                return baseline
    return None


def apply_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split findings into (active, baselined) and report stale entries.

    Each baseline entry absorbs up to ``count`` matching findings; any
    remaining capacity after the run means the underlying code was
    fixed, and the entry is reported as stale so ``--baseline-update``
    can expire it.
    """
    remaining = Counter(baseline)
    active: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            active.append(finding)
    stale = [
        {"rule": rule, "path": path, "snippet": snippet, "count": count}
        for (rule, path, snippet), count in sorted(remaining.items())
        if count > 0
    ]
    return active, baselined, stale
