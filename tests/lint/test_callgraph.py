"""The shared call-graph layer: name binding, edge resolution, closures,
and the per-root index cache the whole-program rules stand on."""

from pathlib import Path

from repro.lint.callgraph import (
    ProgramIndex,
    module_name_for,
    program_index_for_root,
)


def _write_tree(root: Path, files: dict) -> list:
    pairs = []
    for scope, source in files.items():
        path = root / scope
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        pairs.append((path, scope))
    return sorted(pairs, key=lambda pair: pair[1])


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for("repro/api/stages.py") == "repro.api.stages"

    def test_package_init(self):
        assert module_name_for("repro/lint/__init__.py") == "repro.lint"

    def test_top_level(self):
        assert module_name_for("keys.py") == "keys"


class TestResolution:
    def test_bare_name_and_self_method(self, tmp_path):
        pairs = _write_tree(tmp_path, {
            "mod.py": (
                "def helper():\n"
                "    return 1\n"
                "\n"
                "class Runner:\n"
                "    def go(self):\n"
                "        self.step()\n"
                "        return helper()\n"
                "    def step(self):\n"
                "        pass\n"
            ),
        })
        index = ProgramIndex.build(pairs)
        go = index.get("mod:Runner.go")
        callees = {site.callee for site in go.calls}
        assert callees == {"mod:Runner.step", "mod:helper"}
        self_call = [s for s in go.calls if s.callee == "mod:Runner.step"][0]
        assert self_call.implicit_self

    def test_relative_import_and_alias(self, tmp_path):
        pairs = _write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/hashing.py": "def stable_hash(obj):\n    return obj\n",
            "pkg/keys.py": (
                "from .hashing import stable_hash as sh\n"
                "\n"
                "def key(spec):\n"
                "    return sh(spec)\n"
            ),
        })
        index = ProgramIndex.build(pairs)
        key = index.get("pkg.keys:key")
        assert [site.callee for site in key.calls] == [
            "pkg.hashing:stable_hash"
        ]

    def test_reexport_through_init(self, tmp_path):
        pairs = _write_tree(tmp_path, {
            "pkg/__init__.py": "from .engine import run\n",
            "pkg/engine.py": "def run():\n    return 0\n",
            "main.py": (
                "import pkg\n"
                "\n"
                "def main():\n"
                "    return pkg.run()\n"
            ),
        })
        index = ProgramIndex.build(pairs)
        main = index.get("main:main")
        assert [site.callee for site in main.calls] == ["pkg.engine:run"]

    def test_unresolvable_calls_are_kept_with_none(self, tmp_path):
        pairs = _write_tree(tmp_path, {
            "mod.py": (
                "import numpy as np\n"
                "\n"
                "def f(x):\n"
                "    return np.sqrt(x)\n"
            ),
        })
        index = ProgramIndex.build(pairs)
        (site,) = index.get("mod:f").calls
        assert site.callee is None
        assert site.raw == "np.sqrt"


class TestClosures:
    def test_transitive_callees(self, tmp_path):
        pairs = _write_tree(tmp_path, {
            "mod.py": (
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    return a()\n"  # cycle must terminate
                "def d():\n    return 0\n"
            ),
        })
        index = ProgramIndex.build(pairs)
        assert index.transitive_callees("mod:a") == ["mod:b", "mod:c"]
        assert index.transitive_callees("mod:d") == []


class TestIndexCache:
    def test_same_tree_returns_cached_index(self, tmp_path):
        _write_tree(tmp_path, {"mod.py": "def f():\n    return 0\n"})
        first = program_index_for_root(tmp_path)
        second = program_index_for_root(tmp_path)
        assert first is second

    def test_edit_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        _write_tree(tmp_path, {"mod.py": "def f():\n    return 0\n"})
        first = program_index_for_root(tmp_path)
        target.write_text("def f():\n    return 1\n\ndef g():\n    return 2\n")
        second = program_index_for_root(tmp_path)
        assert second is not first
        assert second.get("mod:g") is not None
