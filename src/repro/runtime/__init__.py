"""``repro.runtime`` — the parallel campaign engine.

The layer between the :mod:`repro.api` facade and the training
pipeline: it takes *many* experiment specs, plans them as one
deduplicated task graph (traces → bundle → pretrain → finetune →
evaluate, collapsed by artifact-store key so shared stages run once),
and executes the graph either in-process or on a worker pool, with
retries, per-task spawned seed sequences and a JSON campaign manifest.

Quickstart::

    from repro.runtime import expand_grid, run_campaign

    specs = expand_grid(scenarios=["pretrain", "case1"], seeds=[0, 1],
                        scales=["smoke"])
    result = run_campaign(specs, workers=2)
    print(result.format_summary())          # statuses, timings, hits
    print(result.manifest_path)             # the JSON manifest

The same engine backs ``repro sweep``, the paper's table runners and
the benchmark fan-outs.
"""

from repro.runtime.engine import CampaignEngine, CampaignResult, run_campaign
from repro.runtime.plan import (
    DEFAULT_STAGES,
    STAGES,
    CampaignPlan,
    StageTask,
    plan_campaign,
    plan_table,
    spec_for_scale,
)
from repro.runtime.sweep import expand_grid, specs_from_file
from repro.runtime.worker import execute_stage, run_task

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "run_campaign",
    "CampaignPlan",
    "StageTask",
    "plan_campaign",
    "plan_table",
    "spec_for_scale",
    "expand_grid",
    "specs_from_file",
    "execute_stage",
    "run_task",
    "DEFAULT_STAGES",
    "STAGES",
]
