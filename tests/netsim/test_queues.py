"""Tests for drop-tail and RED queues."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue, REDQueue


def make_packet(seq: int = 0, size: int = 1500) -> Packet:
    return Packet(src=0, dst=1, size=size, seq=seq)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(10)
        packets = [make_packet(seq) for seq in range(5)]
        for packet in packets:
            assert queue.enqueue(packet)
        popped = [queue.dequeue().seq for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        queue = DropTailQueue(3)
        assert all(queue.enqueue(make_packet(i)) for i in range(3))
        assert not queue.enqueue(make_packet(3))
        assert queue.stats.dropped == 1
        assert queue.occupancy == 3

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(1).dequeue() is None

    def test_stats_counters(self):
        queue = DropTailQueue(2)
        queue.enqueue(make_packet(0, size=100))
        queue.enqueue(make_packet(1, size=200))
        queue.enqueue(make_packet(2, size=300))  # dropped
        queue.dequeue()
        stats = queue.stats
        assert stats.enqueued == 2
        assert stats.dequeued == 1
        assert stats.dropped == 1
        assert stats.bytes_enqueued == 300
        assert stats.bytes_dropped == 300
        assert stats.max_occupancy == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_drop_then_space_allows_enqueue(self):
        queue = DropTailQueue(1)
        queue.enqueue(make_packet(0))
        assert not queue.enqueue(make_packet(1))
        queue.dequeue()
        assert queue.enqueue(make_packet(2))

    @given(st.lists(st.sampled_from(["push", "pop"]), min_size=1, max_size=200))
    def test_property_conservation(self, operations):
        """enqueued == dequeued + still-queued, always."""
        queue = DropTailQueue(8)
        seq = 0
        for op in operations:
            if op == "push":
                queue.enqueue(make_packet(seq))
                seq += 1
            else:
                queue.dequeue()
        assert queue.stats.enqueued == queue.stats.dequeued + queue.occupancy
        assert queue.occupancy <= 8

    @given(st.integers(1, 50))
    def test_property_never_exceeds_capacity(self, capacity):
        queue = DropTailQueue(capacity)
        for seq in range(capacity * 2):
            queue.enqueue(make_packet(seq))
        assert queue.occupancy == capacity
        assert queue.stats.dropped == capacity


class TestRed:
    def test_validation(self):
        with pytest.raises(ValueError):
            REDQueue(10, min_threshold=8, max_threshold=4)
        with pytest.raises(ValueError):
            REDQueue(10, max_drop_probability=0.0)

    def test_empty_queue_accepts(self):
        queue = REDQueue(100, rng=np.random.default_rng(0))
        assert queue.enqueue(make_packet(0))

    def test_drops_under_sustained_load(self):
        queue = REDQueue(
            100, min_threshold=5, max_threshold=20, rng=np.random.default_rng(0)
        )
        for seq in range(4000):
            queue.enqueue(make_packet(seq))
            if seq % 3 == 0:  # drain slower than arrivals
                queue.dequeue()
        assert queue.stats.dropped > 0

    def test_average_tracks_occupancy(self):
        queue = REDQueue(100, rng=np.random.default_rng(0))
        for seq in range(50):
            queue.enqueue(make_packet(seq))
        assert queue.average > 0.0

    def test_red_respects_hard_capacity(self):
        queue = REDQueue(
            10, min_threshold=8, max_threshold=10, max_drop_probability=0.01,
            rng=np.random.default_rng(0),
        )
        for seq in range(100):
            queue.enqueue(make_packet(seq))
        assert queue.occupancy <= 10
