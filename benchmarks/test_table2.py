"""Table 2 — pre-training saves fine-tuning data and compute (case 1).

Paper values (MSE ×10⁻³ / training time):

    | Pre-trained, decoder only, full data | 0.033 | 8h45 |
    | Pre-trained, decoder only, 10% data  | 0.037 | 3h45 |
    | From scratch, full NTT, full data    | 0.036 | 26h  |
    | From scratch, full NTT, 10% data     | 0.118 | 8h40 |

Expected shape: pre-trained + decoder-only on 10% data performs about as
well as from-scratch on the full dataset, at a fraction of the training
time; from-scratch on 10% is clearly worse.
"""

from __future__ import annotations

from benchmarks.conftest import save_results
from repro.core.pipeline import format_rows, run_table2


def test_table2_training_resource_savings(scale, context, benchmark):
    rows = benchmark.pedantic(
        lambda: run_table2(scale, context), rounds=1, iterations=1
    )
    save_results("table2", {"rows": rows})
    print("\nTable 2 (delay MSE s^2 x1e-3, fine-tuning wall time s):")
    print(format_rows(rows))

    # Decoder-only fine-tuning is much cheaper than full training on the
    # same data (paper: 8h45 vs 26h).  Holds at every scale because the
    # frozen encoder cuts the backward pass short.
    assert (
        rows["pretrained_full"]["training_time_s"]
        < rows["scratch_full"]["training_time_s"]
    )
    # Pre-trained on 10% is cheaper than from-scratch on 100% (the
    # paper's ~7x saving argument).
    assert (
        rows["pretrained_10pct"]["training_time_s"]
        < rows["scratch_full"]["training_time_s"]
    )

    if scale.name == "smoke":
        return  # smoke scale validates plumbing, not learning quality

    # From scratch degrades when data shrinks; pre-trained degrades less
    # in absolute terms (paper: 0.033->0.037 vs 0.036->0.118).
    pretrained_gap = (
        rows["pretrained_10pct"]["delay_mse"] - rows["pretrained_full"]["delay_mse"]
    )
    scratch_gap = rows["scratch_10pct"]["delay_mse"] - rows["scratch_full"]["delay_mse"]
    assert pretrained_gap <= scratch_gap + 1e-9
