"""Deterministic random-number management.

Every stochastic component in the repository (traffic generators,
parameter initialisation, dataset shuffling) draws from a
:class:`numpy.random.Generator` handed to it explicitly.  The helpers
here make it easy to derive independent, reproducible streams from a
single experiment seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "RngFactory"]


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` seeded with ``seed``."""
    return np.random.default_rng(seed)


class RngFactory:
    """Derive independent named random streams from a root seed.

    Two factories built with the same seed hand out identical streams for
    identical names, regardless of the order in which streams are
    requested.  This keeps simulations reproducible even when components
    are constructed in different orders.

    Example::

        factory = RngFactory(seed=7)
        traffic_rng = factory.derive("traffic")
        model_rng = factory.derive("model-init")
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Root seed of this factory."""
        return self._seed

    def derive(self, name: str) -> np.random.Generator:
        """Return a generator for the stream called ``name``.

        The stream depends only on ``(seed, name)``: the name becomes a
        ``SeedSequence`` spawn key — the same mechanism
        ``SeedSequence.spawn`` uses for independent child streams, with
        the child index replaced by a stable hash of the name.
        """
        mixed = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(_stable_hash(name),)
        )
        return np.random.default_rng(mixed)

    def derive_seed(self, name: str) -> int:
        """Return a 63-bit integer seed for the stream called ``name``."""
        return int(self.derive(name).integers(0, 2**63 - 1))


def _stable_hash(name: str) -> int:
    """A process-independent string hash (``hash()`` is salted per process)."""
    value = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (2**64)
    return value % (2**63)
