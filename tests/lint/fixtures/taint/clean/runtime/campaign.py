"""Clean mirror: host identity stays in run metadata, not in keys."""

from api.hashing import stable_hash
from runtime.ident import host_tag


def task_key(spec):
    return stable_hash({"spec": spec})


def manifest_row(spec):
    return {"key": task_key(spec), "host": host_tag()}
