"""Clean hot-loop fixture: out= kernels, scalar math, one justified miss."""

# repro: hot

import numpy as np


def step(grad: np.ndarray, out: np.ndarray, lr: float) -> float:
    np.multiply(grad, lr, out=out)
    decay = 1.0 - lr * 0.5
    total = float(out.sum())
    return total * decay


def warm(shape, out: np.ndarray) -> np.ndarray:
    buffer = np.empty(shape)  # repro: allow(hot-loop-alloc): pool miss on cold start; reused afterwards
    np.multiply(buffer, 2.0, out=out)
    return out
