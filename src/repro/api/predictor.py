"""Batched serving facade over trained NTT checkpoints.

The first step toward the serving story: a :class:`Predictor` wraps a
trained model plus its feature pipeline and answers delay / MCT queries
over plain numpy batches of raw (unnormalised) window features.  Inputs
of any size are chunked into fixed-size batches internally, so callers
can throw arbitrarily large arrays at it without blowing up memory.

Checkpoints written by :meth:`Predictor.save` (or
``Experiment.save_checkpoint`` / ``repro pretrain``) are self-describing
— the model config and scaler statistics ride along as metadata — so
:meth:`Predictor.from_checkpoint` needs nothing but the file.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import DELAY_COLUMN, FeaturePipeline
from repro.core.model import NTT, NTTForDelay, NTTForMCT
from repro.datasets.windows import WindowDataset
from repro.nn import fastpath
from repro.nn.serialize import load_state, load_state_mmap, save_checkpoint
from repro.nn.tensor import no_grad

from repro.api.spec import ntt_config_from_dict, ntt_config_to_dict

__all__ = ["Predictor"]

_TASKS = ("delay", "mct")


class Predictor:
    """Serves batched delay or MCT predictions in physical units.

    Args:
        model: a trained :class:`NTTForDelay` or :class:`NTTForMCT`.
        pipeline: the fitted feature pipeline the model was trained
            with (fine-tuned models reuse the pre-training pipeline).
        task: ``delay`` (seconds) or ``mct`` (natural-log seconds).
        batch_size: internal chunk size for the forward passes.
        precision: compute dtype for the forward passes (the PR 5
            policy; see :data:`repro.nn.fastpath.PRECISIONS`).  The
            model's parameters must already be stored in this dtype —
            :meth:`from_checkpoint` handles that.  Outputs are always
            float64 (physical units come from float64 scaler state).
    """

    def __init__(
        self,
        model,
        pipeline: FeaturePipeline,
        task: str = "delay",
        batch_size: int = 256,
        precision: str = "float64",
    ):
        if task not in _TASKS:
            raise ValueError(f"unknown task {task!r}; choose 'delay' or 'mct'")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        self.pipeline = pipeline
        self.task = task
        self.batch_size = batch_size
        self.precision = fastpath.resolve_dtype(precision).name
        self.model.eval()

    def __repr__(self) -> str:
        return (
            f"Predictor(task={self.task!r}, batch_size={self.batch_size}, "
            f"window={self.model.config.aggregation.seq_len}+ packets)"
        )

    # -- serving ------------------------------------------------------------------

    def predict(
        self,
        features: np.ndarray,
        receiver: np.ndarray,
        message_size: np.ndarray | None = None,
    ) -> np.ndarray:
        """Predictions for raw feature windows.

        Args:
            features: raw (unnormalised) windows, shape
                ``(n, window_len, 3)`` with the
                :data:`~repro.datasets.windows.RAW_FEATURES` layout.
            receiver: receiver ids, shape ``(n, window_len)``.
            message_size: message sizes in bytes, shape ``(n,)`` —
                required for the MCT task.

        Returns:
            Delay predictions in seconds, or MCT predictions in
            natural-log seconds, shape ``(n,)``.
        """
        features = np.asarray(features, dtype=np.float64)
        receiver = np.asarray(receiver, dtype=np.int64)
        if features.ndim != 3:
            raise ValueError(f"features must be 3-D, got shape {features.shape}")
        if len(features) != len(receiver):
            raise ValueError("features and receiver batch sizes differ")
        normalised = self.pipeline.feature_scaler.transform(features)
        if self.task == "mct":
            if message_size is None:
                raise ValueError("the MCT task needs message_size per window")
            sizes = np.atleast_1d(np.asarray(message_size, dtype=np.float64))
            if sizes.shape != (len(features),):
                raise ValueError("features and message_size batch sizes differ")
            sizes = np.maximum(sizes, 1.0)
            sizes = self.pipeline.message_size_scaler.transform(np.log(sizes)[:, None])[:, 0]
        if len(features) == 0:
            # The forward loop would produce np.zeros(0) and push it
            # through _to_physical, whose inverse-transform semantics
            # are only defined over model outputs; short-circuit to the
            # documented contract instead: shape (0,), float64, both
            # tasks (validation above still applies).
            return np.empty(0, dtype=np.float64)
        outputs = []
        with no_grad(), fastpath.precision(self.precision):
            for start in range(0, len(features), self.batch_size):
                stop = start + self.batch_size
                if self.task == "delay":
                    prediction = self.model(normalised[start:stop], receiver[start:stop])
                else:
                    prediction = self.model(
                        normalised[start:stop], receiver[start:stop], sizes[start:stop]
                    )
                outputs.append(prediction.data)
        raw = np.concatenate(outputs).astype(np.float64, copy=False)
        return self._to_physical(raw)

    __call__ = predict

    def predict_dataset(self, dataset: WindowDataset) -> np.ndarray:
        """Predictions for every window of a dataset."""
        message_size = dataset.message_size if self.task == "mct" else None
        return self.predict(dataset.features, dataset.receiver, message_size)

    def _to_physical(self, normalised: np.ndarray) -> np.ndarray:
        if self.task == "delay":
            mean = self.pipeline.feature_scaler.mean[DELAY_COLUMN]
            return normalised * self.pipeline.delay_std + mean
        return self.pipeline.mct_scaler.inverse_transform(normalised[:, None])[:, 0]

    # -- persistence --------------------------------------------------------------

    def save(self, path, compress: bool = True) -> None:
        """Write a self-describing checkpoint for this predictor.

        ``compress=False`` stores the parameters raw so the serving
        runtime can memory-map them (see
        :meth:`from_checkpoint`'s ``mmap`` flag)."""
        scalers = {
            "feature_scaler": self.pipeline.feature_scaler.to_dict(),
            "message_size_scaler": (
                self.pipeline.message_size_scaler.to_dict()
                if self.pipeline.message_size_scaler.fitted
                else None
            ),
            "mct_scaler": (
                self.pipeline.mct_scaler.to_dict()
                if self.pipeline.mct_scaler.fitted
                else None
            ),
        }
        save_checkpoint(
            self.model,
            path,
            metadata={
                "role": "predictor",
                "task": self.task,
                "config": ntt_config_to_dict(self.model.config),
                "pipeline": scalers,
            },
            compress=compress,
        )

    @classmethod
    def from_checkpoint(
        cls,
        path,
        batch_size: int = 256,
        precision: str = "float64",
        mmap: bool = False,
    ) -> "Predictor":
        """Rebuild a predictor from a checkpoint written by :meth:`save`.

        Args:
            path: a checkpoint file (``repro pretrain``, :meth:`save`,
                or ``Experiment.save_checkpoint``).
            batch_size: internal forward chunk size.
            precision: compute dtype the model is *loaded in* (the PR 5
                policy): ``"float32"`` stores the parameters in float32
                and runs every forward at that precision.
            mmap: memory-map the parameter payloads instead of reading
                them (zero-copy for checkpoints written with
                ``compress=False``; see
                :func:`repro.nn.serialize.load_state_mmap`).
        """
        loader = load_state_mmap if mmap else load_state
        state, metadata = loader(path)
        if "config" not in metadata:
            raise ValueError(
                f"checkpoint {path} has no model config metadata; "
                "write it with Predictor.save or `repro pretrain`"
            )
        task = metadata.get("task", "delay")
        if task not in _TASKS:
            # Same clean error as the constructor, raised *before* the
            # state dict is forced into a wrong-shaped model (which
            # would surface as a confusing missing-parameter KeyError).
            raise ValueError(
                f"checkpoint {path} serves unknown task {task!r}; "
                "choose 'delay' or 'mct'"
            )
        if "pipeline" not in metadata:
            raise ValueError(
                f"checkpoint {path} has no feature-pipeline metadata; "
                "write it with Predictor.save or `repro pretrain`"
            )
        config = ntt_config_from_dict(metadata["config"])
        with fastpath.precision(precision):
            if task == "mct":
                model = NTTForMCT(config, NTT(config))
            else:
                model = NTTForDelay(config)
            # mmap-loaded float64 parameters alias the checkpoint's
            # pages read-only — fine for a serving facade, which only
            # ever runs no-grad forwards.
            model.load_state_dict(state, copy=not mmap)
        pipeline = FeaturePipeline()
        stored = metadata["pipeline"]
        from repro.datasets.normalize import FeatureScaler

        pipeline.feature_scaler = FeatureScaler.from_dict(stored["feature_scaler"])
        if stored.get("message_size_scaler"):
            pipeline.message_size_scaler = FeatureScaler.from_dict(
                stored["message_size_scaler"]
            )
        if stored.get("mct_scaler"):
            pipeline.mct_scaler = FeatureScaler.from_dict(stored["mct_scaler"])
        return cls(
            model, pipeline, task=task, batch_size=batch_size, precision=precision
        )
