"""Finite-difference gradient checks for every autograd operator."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, stack
from repro.nn.testing import gradcheck


@pytest.fixture
def arrays(rng):
    return {
        "a": rng.normal(size=(3, 4)),
        "b": rng.normal(size=(3, 4)),
        "v": rng.normal(size=(4,)),
        "m": rng.normal(size=(4, 5)),
        "pos": np.abs(rng.normal(size=(3, 4))) + 0.5,
        "batched": rng.normal(size=(2, 3, 4)),
    }


class TestArithmetic:
    def test_add(self, arrays):
        gradcheck(lambda t: (t[0] + t[1]).sum(), [arrays["a"], arrays["b"]])

    def test_add_broadcast_row(self, arrays):
        gradcheck(lambda t: (t[0] + t[1]).sum(), [arrays["a"], arrays["v"]])

    def test_add_broadcast_scalar(self, arrays):
        gradcheck(lambda t: (t[0] + t[1]).sum(), [arrays["a"], np.array(2.0)])

    def test_sub(self, arrays):
        gradcheck(lambda t: (t[0] - t[1]).sum(), [arrays["a"], arrays["b"]])

    def test_rsub(self, arrays):
        gradcheck(lambda t: (3.0 - t[0]).sum(), [arrays["a"]])

    def test_mul(self, arrays):
        gradcheck(lambda t: (t[0] * t[1]).sum(), [arrays["a"], arrays["b"]])

    def test_mul_broadcast(self, arrays):
        gradcheck(lambda t: (t[0] * t[1]).sum(), [arrays["batched"], arrays["v"]])

    def test_div(self, arrays):
        gradcheck(lambda t: (t[0] / t[1]).sum(), [arrays["a"], arrays["pos"]])

    def test_rdiv(self, arrays):
        gradcheck(lambda t: (1.0 / t[0]).sum(), [arrays["pos"]])

    def test_neg(self, arrays):
        gradcheck(lambda t: (-t[0]).sum(), [arrays["a"]])

    def test_pow(self, arrays):
        gradcheck(lambda t: (t[0] ** 3).sum(), [arrays["a"]])

    def test_pow_fractional(self, arrays):
        gradcheck(lambda t: (t[0] ** 0.5).sum(), [arrays["pos"]])

    def test_pow_non_scalar_rejected(self, arrays):
        with pytest.raises(TypeError):
            Tensor(arrays["a"]) ** Tensor(arrays["b"])


class TestMatmul:
    def test_2d(self, arrays):
        gradcheck(lambda t: (t[0] @ t[1]).sum(), [arrays["a"], arrays["m"]])

    def test_batched_times_2d(self, arrays):
        gradcheck(lambda t: (t[0] @ t[1]).sum(), [arrays["batched"], arrays["m"]])

    def test_batched_times_batched(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        gradcheck(lambda t: (t[0] @ t[1]).sum(), [a, b])

    def test_broadcast_leading_dims(self, rng):
        a = rng.normal(size=(2, 2, 3, 4))
        b = rng.normal(size=(4, 5))
        gradcheck(lambda t: (t[0] @ t[1]).sum(), [a, b])

    def test_vector_vector(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        gradcheck(lambda t: t[0] @ t[1], [a, b])

    def test_matrix_vector(self, rng):
        a = rng.normal(size=(3, 4))
        v = rng.normal(size=4)
        gradcheck(lambda t: (t[0] @ t[1]).sum(), [a, v])

    def test_rmatmul_ndarray(self, rng):
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        x = rng.normal(size=(3, 4))
        out = x @ w
        assert isinstance(out, Tensor)
        out.sum().backward()
        assert w.grad is not None


class TestReductions:
    def test_sum_all(self, arrays):
        gradcheck(lambda t: t[0].sum(), [arrays["a"]])

    def test_sum_axis(self, arrays):
        gradcheck(lambda t: t[0].sum(axis=0).sum(), [arrays["a"]])

    def test_sum_axis_keepdims(self, arrays):
        gradcheck(lambda t: t[0].sum(axis=1, keepdims=True).sum(), [arrays["a"]])

    def test_sum_multiple_axes(self, arrays):
        gradcheck(lambda t: t[0].sum(axis=(0, 2)).sum(), [arrays["batched"]])

    def test_mean_all(self, arrays):
        gradcheck(lambda t: t[0].mean(), [arrays["a"]])

    def test_mean_axis(self, arrays):
        gradcheck(lambda t: t[0].mean(axis=-1).sum(), [arrays["batched"]])

    def test_var(self, arrays):
        gradcheck(lambda t: t[0].var(axis=-1).sum(), [arrays["a"]])

    def test_max_all(self, rng):
        # Unique values keep max differentiable.
        values = rng.permutation(12).astype(float).reshape(3, 4)
        gradcheck(lambda t: t[0].max(), [values])

    def test_max_axis(self, rng):
        values = rng.permutation(12).astype(float).reshape(3, 4)
        gradcheck(lambda t: t[0].max(axis=1).sum(), [values])


class TestShape:
    def test_reshape(self, arrays):
        gradcheck(lambda t: t[0].reshape(4, 3).sum(axis=0).max(), [arrays["a"]])

    def test_reshape_tuple_argument(self, arrays):
        gradcheck(lambda t: t[0].reshape((12,)).sum(), [arrays["a"]])

    def test_transpose_default(self, arrays):
        gradcheck(lambda t: (t[0].transpose() * t[0].transpose()).sum(), [arrays["a"]])

    def test_transpose_axes(self, arrays):
        gradcheck(lambda t: t[0].transpose(1, 0, 2).sum(axis=0).max(), [arrays["batched"]])

    def test_swapaxes(self, arrays):
        gradcheck(lambda t: t[0].swapaxes(-1, -2).sum(axis=0).max(), [arrays["batched"]])

    def test_getitem_slice(self, arrays):
        gradcheck(lambda t: t[0][:, 1:3].sum(), [arrays["a"]])

    def test_getitem_int(self, arrays):
        gradcheck(lambda t: t[0][1].sum(), [arrays["a"]])

    def test_getitem_repeated_rows_accumulate(self, rng):
        table = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = table.take_rows(np.array([0, 0, 2]))
        out.sum().backward()
        assert table.grad[0, 0] == pytest.approx(2.0)
        assert table.grad[2, 0] == pytest.approx(1.0)
        assert table.grad[1, 0] == pytest.approx(0.0)

    def test_take_rows_gradcheck(self, rng):
        indices = np.array([[0, 1], [2, 0]])
        gradcheck(lambda t: t[0].take_rows(indices).sum(axis=(0, 1)).max(), [rng.normal(size=(3, 4))])

    def test_take_rows_requires_2d(self, arrays):
        with pytest.raises(ValueError):
            Tensor(arrays["batched"]).take_rows(np.array([0]))

    def test_concat(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        gradcheck(lambda t: concat([t[0], t[1]], axis=0).sum(axis=1).max(), [a, b])

    def test_concat_axis1(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 5))
        gradcheck(lambda t: concat([t[0], t[1]], axis=1).sum(), [a, b])

    def test_stack(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 3))
        gradcheck(lambda t: stack([t[0], t[1]], axis=0).sum(axis=(1, 2)).max(), [a, b])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])


class TestNonlinearities:
    def test_exp(self, arrays):
        gradcheck(lambda t: t[0].exp().sum(), [arrays["a"]])

    def test_log(self, arrays):
        gradcheck(lambda t: t[0].log().sum(), [arrays["pos"]])

    def test_sqrt(self, arrays):
        gradcheck(lambda t: t[0].sqrt().sum(), [arrays["pos"]])

    def test_tanh(self, arrays):
        gradcheck(lambda t: t[0].tanh().sum(), [arrays["a"]])

    def test_sigmoid(self, arrays):
        gradcheck(lambda t: t[0].sigmoid().sum(), [arrays["a"]])

    def test_relu(self, arrays):
        # Shift away from the kink for numerical stability.
        gradcheck(lambda t: (t[0] + 0.1).relu().sum(), [arrays["pos"]])

    def test_gelu(self, arrays):
        gradcheck(lambda t: t[0].gelu().sum(), [arrays["a"]], atol=1e-5)

    def test_abs(self, arrays):
        gradcheck(lambda t: t[0].abs().sum(), [arrays["pos"]])

    def test_softmax(self, arrays):
        gradcheck(lambda t: (t[0].softmax(axis=-1) * t[1]).sum(), [arrays["a"], arrays["b"]])

    def test_softmax_rows_sum_to_one(self, arrays):
        out = Tensor(arrays["a"]).softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_masked_fill(self, arrays):
        mask = arrays["a"] > 0
        gradcheck(lambda t: t[0].masked_fill(mask, -5.0).sum(), [arrays["a"]])

    def test_masked_fill_values(self, arrays):
        mask = np.ones_like(arrays["a"], dtype=bool)
        out = Tensor(arrays["a"]).masked_fill(mask, 7.0)
        assert np.all(out.data == 7.0)

    def test_dropout_train_scaling(self, rng):
        x = Tensor(np.ones((1000,)), requires_grad=True)
        out = x.dropout(0.5, rng)
        kept = out.data != 0
        assert np.allclose(out.data[kept], 2.0)  # inverted dropout
        out.sum().backward()
        assert np.allclose(x.grad[kept], 2.0)
        assert np.allclose(x.grad[~kept], 0.0)

    def test_dropout_zero_rate_identity(self, rng):
        x = Tensor(np.ones(10))
        assert x.dropout(0.0, rng) is x

    def test_dropout_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Tensor(np.ones(4)).dropout(1.0, rng)
