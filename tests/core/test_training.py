"""Tests for pre-training, fine-tuning and evaluation wiring."""

import numpy as np
import pytest

from repro.core.evaluation import evaluate_delay, evaluate_mct, predict_delay
from repro.core.features import FeaturePipeline
from repro.core.finetune import (
    FinetuneMode,
    finetune_delay,
    finetune_mct,
    train_delay_from_scratch,
    train_mct_from_scratch,
)
from repro.core.model import NTTConfig
from repro.core.pretrain import TrainSettings, pretrain


@pytest.fixture(scope="module")
def settings():
    return TrainSettings(epochs=2, batch_size=32, lr=1e-3, patience=None, seed=0)


@pytest.fixture(scope="module")
def pretrained(smoke_bundle, settings):
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)


class TestPretrain:
    def test_returns_result(self, pretrained):
        assert pretrained.test_mse_seconds2 > 0
        assert pretrained.history.epochs_run == 2
        assert pretrained.test_mse_scaled == pytest.approx(
            pretrained.test_mse_seconds2 * 1e3
        )

    def test_loss_improves(self, smoke_bundle):
        settings = TrainSettings(epochs=6, batch_size=32, lr=3e-3, patience=None)
        result = pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)
        assert result.history.final_train_loss < result.history.train_loss[0]

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            TrainSettings(epochs=0)

    def test_pipeline_reused_if_given(self, smoke_bundle, settings):
        pipeline = FeaturePipeline().fit(smoke_bundle.train)
        result = pretrain(
            NTTConfig.smoke(), smoke_bundle, settings=settings, pipeline=pipeline
        )
        assert result.pipeline is pipeline


class TestFinetuneDelay:
    def test_decoder_only_freezes_encoder(self, pretrained, smoke_case1_bundle, settings):
        import copy

        model = copy.deepcopy(pretrained.model)
        encoder_before = {
            name: value.copy() for name, value in model.ntt.state_dict().items()
        }
        decoder_before = {
            name: value.copy() for name, value in model.decoder.state_dict().items()
        }
        result = finetune_delay(
            model, pretrained.pipeline, smoke_case1_bundle,
            settings=settings, mode=FinetuneMode.DECODER_ONLY,
        )
        for name, value in model.ntt.state_dict().items():
            assert np.array_equal(value, encoder_before[name]), name
        changed = any(
            not np.array_equal(value, decoder_before[name])
            for name, value in model.decoder.state_dict().items()
        )
        assert changed
        assert result.mode == FinetuneMode.DECODER_ONLY
        assert result.task == "delay"
        assert result.training_time > 0

    def test_full_mode_updates_encoder(self, pretrained, smoke_case1_bundle, settings):
        import copy

        model = copy.deepcopy(pretrained.model)
        encoder_before = {
            name: value.copy() for name, value in model.ntt.state_dict().items()
        }
        finetune_delay(
            model, pretrained.pipeline, smoke_case1_bundle,
            settings=settings, mode=FinetuneMode.FULL,
        )
        changed = any(
            not np.array_equal(value, encoder_before[name])
            for name, value in model.ntt.state_dict().items()
        )
        assert changed

    def test_invalid_mode_rejected(self, pretrained, smoke_case1_bundle, settings):
        with pytest.raises(ValueError):
            finetune_delay(
                pretrained.model, pretrained.pipeline, smoke_case1_bundle,
                settings=settings, mode="partial",
            )

    def test_from_scratch_trains_everything(self, pretrained, smoke_case1_bundle, settings):
        result = train_delay_from_scratch(
            NTTConfig.smoke(), pretrained.pipeline, smoke_case1_bundle, settings=settings
        )
        assert result.mode == FinetuneMode.FULL
        assert result.test_mse > 0


class TestFinetuneMCT:
    def test_new_task_head(self, pretrained, smoke_case1_bundle, settings):
        result = finetune_mct(
            pretrained.model, pretrained.model.config, pretrained.pipeline,
            smoke_case1_bundle, settings=settings, mode=FinetuneMode.DECODER_ONLY,
        )
        assert result.task == "mct"
        assert result.test_mse > 0
        # The MCT model shares the pre-trained encoder object.
        assert result.model.ntt is pretrained.model.ntt

    def test_from_scratch(self, pretrained, smoke_case1_bundle, settings):
        result = train_mct_from_scratch(
            NTTConfig.smoke(), pretrained.pipeline, smoke_case1_bundle, settings=settings
        )
        assert result.test_mse > 0


class TestEvaluation:
    def test_predict_delay_units(self, pretrained, smoke_bundle):
        predictions = predict_delay(pretrained.model, pretrained.pipeline, smoke_bundle.test)
        assert predictions.shape == (len(smoke_bundle.test),)
        # Predictions are physical delays: same order of magnitude as targets.
        assert predictions.mean() == pytest.approx(
            smoke_bundle.test.delay_target.mean(), rel=2.0, abs=0.5
        )

    def test_evaluate_delay_matches_manual(self, pretrained, smoke_bundle):
        mse = evaluate_delay(pretrained.model, pretrained.pipeline, smoke_bundle.test)
        predictions = predict_delay(pretrained.model, pretrained.pipeline, smoke_bundle.test)
        manual = float(np.mean((predictions - smoke_bundle.test.delay_target) ** 2))
        assert mse == pytest.approx(manual)

    def test_evaluate_mct(self, pretrained, smoke_case1_bundle, settings):
        result = finetune_mct(
            pretrained.model, pretrained.model.config, pretrained.pipeline,
            smoke_case1_bundle, settings=settings,
        )
        mse = evaluate_mct(result.model, pretrained.pipeline, smoke_case1_bundle.test)
        assert np.isfinite(mse) and mse > 0
