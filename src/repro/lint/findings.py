"""Lint findings: what a rule reports and how it travels.

A :class:`Finding` is one violation at one source location.  Findings
are plain data — JSON-ready via :meth:`Finding.to_dict` — because they
cross three boundaries: the CLI's ``--format json`` output (whose shape
CI validates), the committed baseline file (matched by rule + path +
snippet, never by line number, so unrelated edits don't invalidate
grandfathered entries), and the test fixtures' exact-match assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "SEVERITIES"]

#: Recognised severities, most severe first.  Every severity causes a
#: non-zero exit — the distinction is for readers and dashboards, not
#: for gating.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is relative to the lint root (posix separators), so
    findings compare equal across machines; ``snippet`` is the stripped
    source line, the stable identity the baseline matches on.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: str = field(default="error", compare=False)
    snippet: str = field(default="", compare=False)
    #: Interprocedural rules attach the source→sink witness here, one
    #: rendered step per element; empty for single-site findings.
    chain: tuple = field(default=(), compare=False)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; choose from {SEVERITIES}"
            )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "chain": list(self.chain),
        }

    def format(self) -> str:
        """One human-readable line (the ``--format text`` row)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )
