"""Tests for attention inspection and report helpers."""

import numpy as np
import pytest

from repro.analysis.attention import attention_summary
from repro.analysis.reports import dataset_report, trace_report
from repro.core.model import NTT, NTTConfig


class TestAttentionSummary:
    @pytest.fixture
    def model_and_batch(self, rng):
        config = NTTConfig.smoke()
        model = NTT(config)
        window = config.aggregation.seq_len
        features = rng.normal(size=(4, window, 3))
        receiver = rng.integers(0, 4, size=(4, window))
        return model, features, receiver

    def test_levels_match_spec(self, model_and_batch):
        model, features, receiver = model_and_batch
        summary = attention_summary(model, features, receiver)
        assert len(summary.level_labels) == len(model.config.aggregation.levels)
        assert summary.level_attention.shape == (len(summary.level_labels),)

    def test_attention_mass_normalised(self, model_and_batch):
        model, features, receiver = model_and_batch
        summary = attention_summary(model, features, receiver)
        assert summary.level_attention.sum() == pytest.approx(1.0, abs=1e-6)
        assert summary.per_element.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(summary.per_element >= 0)

    def test_per_element_length(self, model_and_batch):
        model, features, receiver = model_and_batch
        summary = attention_summary(model, features, receiver)
        assert summary.per_element.shape == (model.config.aggregation.out_len,)

    def test_most_attended_level(self, model_and_batch):
        model, features, receiver = model_and_batch
        summary = attention_summary(model, features, receiver)
        assert summary.most_attended_level() in summary.level_labels

    def test_format_is_readable(self, model_and_batch):
        model, features, receiver = model_and_batch
        text = attention_summary(model, features, receiver).format()
        assert "attention" in text
        assert "%" in text


class TestReports:
    def test_trace_report_content(self, smoke_trace):
        text = trace_report(smoke_trace, name="pretrain")
        assert "pretrain" in text
        assert "delays (ms)" in text
        assert "MCT (ms)" in text

    def test_trace_report_multiple_receivers(self, smoke_case2_trace):
        text = trace_report(smoke_case2_trace)
        assert "per-receiver mean delay" in text

    def test_trace_report_empty(self):
        from repro.netsim.trace import TraceCollector

        assert "empty" in trace_report(TraceCollector().finalize())

    def test_dataset_report_content(self, smoke_bundle):
        text = dataset_report(smoke_bundle)
        assert "pretrain-smoke" in text
        assert "windows" in text
        assert "splits" in text
