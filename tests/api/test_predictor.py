"""Tests for the batched Predictor facade."""

import numpy as np
import pytest

from repro.api import Predictor
from repro.core.evaluation import predict_delay
from repro.core.model import NTTConfig
from repro.core.pretrain import TrainSettings, pretrain

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture(scope="module")
def trained(smoke_bundle):
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=FAST)


class TestBatching:
    def test_matches_unbatched_evaluation(self, trained, smoke_bundle):
        test = smoke_bundle.test
        expected = predict_delay(trained.model, trained.pipeline, test)
        predictor = Predictor(trained.model, trained.pipeline, batch_size=7)
        assert np.allclose(predictor.predict_dataset(test), expected)

    def test_same_batch_size_is_deterministic(self, trained, smoke_bundle):
        test = smoke_bundle.test
        predictor = Predictor(trained.model, trained.pipeline, batch_size=16)
        assert np.array_equal(
            predictor.predict_dataset(test), predictor.predict_dataset(test)
        )

    def test_batch_size_changes_results_only_at_ulp_level(self, trained, smoke_bundle):
        # Different BLAS batch groupings may differ in the last float
        # ulps, but nothing more.
        test = smoke_bundle.test
        small = Predictor(trained.model, trained.pipeline, batch_size=3)
        large = Predictor(trained.model, trained.pipeline, batch_size=1024)
        np.testing.assert_allclose(
            small.predict_dataset(test), large.predict_dataset(test), rtol=1e-12
        )

    def test_raw_numpy_batches(self, trained, smoke_bundle):
        test = smoke_bundle.test
        predictor = Predictor(trained.model, trained.pipeline)
        out = predictor.predict(test.features[:10], test.receiver[:10])
        assert out.shape == (10,)
        # Physical units: delays are positive and well under a second.
        assert np.all(out < 1.0)

    def test_empty_batch(self, trained):
        predictor = Predictor(trained.model, trained.pipeline)
        window = trained.model.config.aggregation.seq_len
        out = predictor.predict(
            np.zeros((0, window, 3)), np.zeros((0, window), dtype=np.int64)
        )
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_empty_batch_mct(self, trained, smoke_bundle):
        # n=0 must honour the same documented contract on the MCT task
        # (it used to depend on undefined scaler inverse-transform
        # behaviour over empty arrays).
        trained.pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        from repro.core.model import NTT, NTTForMCT

        config = trained.model.config
        predictor = Predictor(
            NTTForMCT(config, NTT(config)), trained.pipeline, task="mct"
        )
        window = config.aggregation.seq_len
        out = predictor.predict(
            np.zeros((0, window, 3)),
            np.zeros((0, window), dtype=np.int64),
            np.zeros(0),
        )
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_empty_batch_still_validates_shapes(self, trained):
        predictor = Predictor(trained.model, trained.pipeline)
        with pytest.raises(ValueError, match="batch sizes"):
            predictor.predict(
                np.zeros((0, 64, 3)), np.zeros((2, 64), dtype=np.int64)
            )

    def test_batch_size_one_matches_per_window_calls(self, trained, smoke_bundle):
        # batch_size=1 chunks each window into its own forward — the
        # exact computation a caller gets from n single-window calls, so
        # the two must agree bit for bit.
        test = smoke_bundle.test
        predictor = Predictor(trained.model, trained.pipeline, batch_size=1)
        chunked = predictor.predict(test.features[:6], test.receiver[:6])
        loose = np.concatenate(
            [
                predictor.predict(test.features[i:i + 1], test.receiver[i:i + 1])
                for i in range(6)
            ]
        )
        assert np.array_equal(chunked, loose)

    def test_oversized_batch_size_matches_single_forward(self, trained, smoke_bundle):
        # batch_size > n leaves everything in one chunk: bit-identical
        # to the unchunked forward pass.
        test = smoke_bundle.test
        expected = predict_delay(trained.model, trained.pipeline, test)
        predictor = Predictor(trained.model, trained.pipeline, batch_size=10 ** 6)
        assert np.array_equal(predictor.predict_dataset(test), expected)


class TestValidation:
    def test_unknown_task_rejected(self, trained):
        with pytest.raises(ValueError, match="task"):
            Predictor(trained.model, trained.pipeline, task="jitter")

    def test_bad_batch_size_rejected(self, trained):
        with pytest.raises(ValueError, match="batch_size"):
            Predictor(trained.model, trained.pipeline, batch_size=0)

    def test_shape_mismatch_rejected(self, trained, smoke_bundle):
        predictor = Predictor(trained.model, trained.pipeline)
        test = smoke_bundle.test
        with pytest.raises(ValueError, match="batch sizes"):
            predictor.predict(test.features[:4], test.receiver[:2])

    def test_mct_requires_message_size(self, trained, smoke_bundle):
        trained.pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        from repro.core.model import NTT, NTTForMCT

        config = trained.model.config
        mct_model = NTTForMCT(config, NTT(config))
        predictor = Predictor(mct_model, trained.pipeline, task="mct")
        test = smoke_bundle.test
        with pytest.raises(ValueError, match="message_size"):
            predictor.predict(test.features[:4], test.receiver[:4])

    def test_mct_message_size_length_mismatch_rejected(self, trained, smoke_bundle):
        trained.pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        from repro.core.model import NTT, NTTForMCT

        config = trained.model.config
        mct_model = NTTForMCT(config, NTT(config))
        predictor = Predictor(mct_model, trained.pipeline, task="mct")
        test = smoke_bundle.test
        with pytest.raises(ValueError, match="message_size batch sizes"):
            predictor.predict(test.features[:4], test.receiver[:4], test.message_size[:2])


class TestCheckpointRoundTrip:
    def test_save_load_bit_for_bit(self, trained, smoke_bundle, tmp_path):
        path = tmp_path / "predictor.npz"
        original = Predictor(trained.model, trained.pipeline)
        original.save(path)
        restored = Predictor.from_checkpoint(path)
        test = smoke_bundle.test
        assert np.array_equal(
            original.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_legacy_checkpoint_without_config_rejected(self, trained, tmp_path):
        from repro.nn.serialize import save_checkpoint

        path = tmp_path / "legacy.npz"
        save_checkpoint(trained.model, path, metadata={"scale": "smoke"})
        with pytest.raises(ValueError, match="config"):
            Predictor.from_checkpoint(path)

    def test_unknown_task_metadata_rejected(self, trained, tmp_path):
        # A clean ValueError *before* the state dict is forced into a
        # wrong model (which would die with a confusing KeyError) — and
        # never a silent fall-back to the delay task.
        from repro.api.spec import ntt_config_to_dict
        from repro.nn.serialize import save_checkpoint

        path = tmp_path / "jitter.npz"
        save_checkpoint(
            trained.model, path,
            metadata={
                "task": "jitter",
                "config": ntt_config_to_dict(trained.model.config),
            },
        )
        with pytest.raises(ValueError, match="unknown task 'jitter'"):
            Predictor.from_checkpoint(path)

    def test_missing_pipeline_metadata_rejected(self, trained, tmp_path):
        # Used to escape as a raw KeyError('pipeline'), which `repro
        # predict` printed as a traceback instead of exiting cleanly.
        from repro.api.spec import ntt_config_to_dict
        from repro.nn.serialize import save_checkpoint

        path = tmp_path / "nopipe.npz"
        save_checkpoint(
            trained.model, path,
            metadata={
                "task": "delay",
                "config": ntt_config_to_dict(trained.model.config),
            },
        )
        with pytest.raises(ValueError, match="pipeline"):
            Predictor.from_checkpoint(path)

    def test_mct_roundtrip_with_fitted_scalers(self, trained, smoke_bundle, tmp_path):
        trained.pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        from repro.core.model import NTT, NTTForMCT

        config = trained.model.config
        original = Predictor(
            NTTForMCT(config, NTT(config)), trained.pipeline, task="mct"
        )
        path = tmp_path / "mct.npz"
        original.save(path)
        restored = Predictor.from_checkpoint(path)
        assert restored.task == "mct"
        assert restored.pipeline.message_size_scaler.fitted
        assert restored.pipeline.mct_scaler.fitted
        test = smoke_bundle.test.with_completed_messages_only()
        assert np.array_equal(
            original.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_delay_roundtrip_without_mct_scalers(self, trained, tmp_path):
        # A delay-only pipeline stores None for the unfitted scalers and
        # restores to the same unfitted state.
        path = tmp_path / "delay.npz"
        pipeline = type(trained.pipeline)()
        pipeline.feature_scaler = trained.pipeline.feature_scaler
        Predictor(trained.model, pipeline).save(path)
        restored = Predictor.from_checkpoint(path)
        assert restored.task == "delay"
        assert not restored.pipeline.message_size_scaler.fitted
        assert not restored.pipeline.mct_scaler.fitted

    def test_mmap_load_is_bit_for_bit(self, trained, smoke_bundle, tmp_path):
        path = tmp_path / "stored.npz"
        original = Predictor(trained.model, trained.pipeline)
        original.save(path, compress=False)
        restored = Predictor.from_checkpoint(path, mmap=True)
        test = smoke_bundle.test
        assert np.array_equal(
            original.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_float32_load_applies_the_precision_policy(
        self, trained, smoke_bundle, tmp_path
    ):
        path = tmp_path / "predictor.npz"
        original = Predictor(trained.model, trained.pipeline)
        original.save(path)
        restored = Predictor.from_checkpoint(path, precision="float32")
        assert restored.precision == "float32"
        parameters = dict(restored.model.named_parameters())
        assert all(p.data.dtype == np.float32 for p in parameters.values())
        test = smoke_bundle.test
        np.testing.assert_allclose(
            restored.predict_dataset(test),
            original.predict_dataset(test),
            rtol=1e-3,
        )
