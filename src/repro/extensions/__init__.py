"""Extensions implementing the paper's §5 research agenda.

* :mod:`repro.extensions.federated` — "Collaborative pre-training":
  combine NTTs pre-trained on private data shards by federated
  averaging, so organisations share models instead of traces.
* :mod:`repro.extensions.continual` — "Continual learning": decide when
  a deployed (fine-tuned) NTT has gone stale and should be re-trained.
"""

from repro.extensions.federated import FederatedTrainer, federated_average
from repro.extensions.continual import DriftMonitor, DriftReport

__all__ = ["FederatedTrainer", "federated_average", "DriftMonitor", "DriftReport"]
