"""The sanctioned wall-clock reads.

Everything in the deterministic core measures durations with
``time.perf_counter()`` and stamps "when did this happen" metadata —
manifest timestamps, event logs — through the two helpers below.  That
split is what lets the ``determinism`` lint rule draw a hard line:
a raw ``time.time()`` / ``datetime.now()`` anywhere else is a finding,
because there it can only be feeding something that ought to be a pure
function of the spec (a cache key, a trace, a training result).

These values are metadata by construction: nothing derived from them
may flow into a cache key, a stored artifact's content, or a golden
trace.  New call sites of these helpers are cheap to audit for exactly
that — which is the point of funnelling them through one module.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

__all__ = ["wall_time_unix", "utc_now_iso"]


def wall_time_unix() -> float:
    """Seconds since the epoch, for timestamp *metadata* only."""
    return time.time()  # repro: allow(determinism): the one sanctioned wall-clock read; callers stamp metadata, never keys


def utc_now_iso() -> str:
    """ISO-8601 UTC timestamp, for manifest/event *metadata* only."""
    return datetime.now(timezone.utc).isoformat()  # repro: allow(determinism): the one sanctioned ISO stamp; metadata only
