"""The `repro lint` CLI contract: exit codes, JSON schema, flags."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

FINDING_KEYS = {
    "rule", "severity", "path", "line", "col", "message", "snippet", "chain",
}


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean"), "--no-baseline"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "determinism" in out
        assert "findings" in out

    def test_usage_error_exits_two(self, capsys):
        assert main(["lint", "--rule", "nope"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "/nonexistent/path"]) == 2
        assert "no such file or directory" in capsys.readouterr().err


class TestJsonFormat:
    def test_schema(self, capsys):
        code = main([
            "lint", str(FIXTURES / "bad"), "--no-baseline", "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert {"active", "suppressed", "baselined"} <= set(payload["counts"])
        assert payload["counts"]["active"] == len(payload["findings"])
        assert payload["stale_baseline"] == []
        for finding in payload["findings"]:
            assert set(finding) == FINDING_KEYS
            assert finding["severity"] in ("error", "warning")
            assert finding["line"] >= 1
            assert isinstance(finding["chain"], list)
        rule_names = {rule["name"] for rule in payload["rules"]}
        assert {
            "determinism", "stage-purity", "hot-loop-alloc",
            "async-blocking", "lock-discipline", "pragma",
            "key-taint", "stage-fingerprint",
        } <= rule_names

    def test_stale_baseline_entries_surface_in_json(self, tmp_path, capsys):
        # Fixed code whose grandfather entry lingers must be visible to
        # JSON consumers (CI dashboards), not only in text mode.
        package = tmp_path / "netsim"
        package.mkdir()
        mod = package / "mod.py"
        mod.write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "bl.json"
        assert main([
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--baseline-update",
        ]) == 0
        capsys.readouterr()
        mod.write_text(
            "def stamp():\n    return 0.0\n", encoding="utf-8"
        )
        assert main([
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["stale_baseline"]) == 1
        entry = payload["stale_baseline"][0]
        assert entry["rule"] == "determinism"
        assert entry["path"] == "netsim/mod.py"

    def test_clean_json_has_empty_findings(self, capsys):
        code = main([
            "lint", str(FIXTURES / "clean"), "--no-baseline", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["counts"]["suppressed"] == 1  # the justified pool miss


class TestFlags:
    def test_rule_filter_comma_and_repeat(self, capsys):
        code = main([
            "lint", str(FIXTURES / "bad"), "--no-baseline", "--format", "json",
            "--rule", "async-blocking,lock-discipline", "--rule", "pragma",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {
            "async-blocking", "lock-discipline", "pragma",
        }

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out
        assert "serve/" in out

    def test_baseline_update_then_clean_run(self, tmp_path, capsys):
        package = tmp_path / "netsim"
        package.mkdir()
        (package / "mod.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "bl.json"
        assert main([
            "lint", str(tmp_path), "--baseline", str(baseline),
            "--baseline-update",
        ]) == 0
        assert "baseline written" in capsys.readouterr().out
        assert main([
            "lint", str(tmp_path), "--baseline", str(baseline),
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out
