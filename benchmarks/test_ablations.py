"""Ablation benches for the design choices DESIGN.md calls out.

Beyond Table 1's fixed ablation rows, these sweep the aggregation
granularity (the §5 open question: "which sequence sizes and aggregation
levels generalize best?") and compare encoder depths.
"""

from __future__ import annotations

from benchmarks.conftest import save_results
from repro.core.aggregation import AggregationSpec
from repro.core.pretrain import pretrain
from repro.netsim.scenarios import ScenarioKind


def test_aggregation_granularity_sweep(scale, context, benchmark):
    """Pre-train the NTT under different aggregation specs and compare
    delay MSE: the paper's multi-timescale spec should be competitive
    with both extremes (no history vs. no recent detail)."""
    specs = dict(context.scale.aggregation_variants)

    def run():
        bundle = context.bundle(ScenarioKind.PRETRAIN)
        results = {}
        for name, spec in specs.items():
            outcome = pretrain(
                context.scale.model_config(aggregation=spec),
                bundle,
                settings=context.scale.pretrain_settings,
            )
            results[name] = {
                "seq_len": spec.seq_len,
                "out_len": spec.out_len,
                "pretrain_delay_mse": outcome.test_mse_seconds2,
                "train_wall_s": outcome.history.wall_time,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_results("ablation_aggregation", {"rows": results})
    print("\nAggregation sweep (delay MSE s^2 x1e-3):")
    for name, row in results.items():
        print(
            f"  {name:8s} seq={row['seq_len']:5d} out={row['out_len']:3d} "
            f"mse={row['pretrain_delay_mse'] * 1e3:8.4f} wall={row['train_wall_s']:.0f}s"
        )
    for row in results.values():
        assert row["pretrain_delay_mse"] > 0


def test_encoder_depth_ablation(scale, context, benchmark):
    """One- vs two-layer encoders on the pre-training task."""
    from dataclasses import replace

    def run():
        bundle = context.bundle(ScenarioKind.PRETRAIN)
        results = {}
        base = context.scale.model_config()
        for layers in (1, base.n_layers):
            config = replace(base, n_layers=layers)
            outcome = pretrain(config, bundle, settings=context.scale.pretrain_settings)
            results[f"layers_{layers}"] = {
                "pretrain_delay_mse": outcome.test_mse_seconds2,
                "parameters": outcome.model.num_parameters(),
                "train_wall_s": outcome.history.wall_time,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_results("ablation_depth", {"rows": results})
    print("\nEncoder depth sweep:")
    for name, row in results.items():
        print(
            f"  {name}: mse={row['pretrain_delay_mse'] * 1e3:.4f}x1e-3 "
            f"params={row['parameters']} wall={row['train_wall_s']:.0f}s"
        )
