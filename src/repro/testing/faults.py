"""Deterministic fault injection for campaign chaos tests.

Armed through one environment variable so the faults reach pool worker
processes without any plumbing (workers inherit the environment):

    REPRO_FAULT_SPEC="pretrain@0:raise,traces:hang:30,bundle@1:exit:17"

Grammar — comma-separated rules of the form ``stage[@attempt]:action[:arg]``:

``stage``
    the registered stage name the rule targets.
``@attempt``
    optional 0-based attempt filter; without it the rule fires on
    *every* attempt (useful for testing retry exhaustion).
``action``
    ``raise`` — raise :class:`FaultInjected` (a transient error under
    the default :class:`~repro.runtime.policy.RetryPolicy`);
    ``hang`` — sleep ``arg`` seconds (default 3600) then raise, standing
    in for a wedged stage the engine must reap at its timeout;
    ``exit`` — ``os._exit(arg or 17)``, killing the worker process
    without cleanup, standing in for OOM kills and segfaults.

The hook (:func:`maybe_inject`) sits at the top of
:func:`~repro.runtime.worker.run_task`'s stage execution and costs one
``os.environ`` lookup when unarmed.  Matching is purely a function of
``(stage, attempt)`` — no randomness, no clocks — so chaos tests are as
reproducible as everything else in the repo.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = [
    "FAULT_SPEC_ENV",
    "FaultInjected",
    "FaultRule",
    "parse_fault_spec",
    "active_rules",
    "maybe_inject",
]

#: Environment variable arming the harness.
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

_ACTIONS = ("raise", "hang", "exit")

#: Default sleep for ``hang`` (long enough that any sane task timeout
#: fires first) and default ``os._exit`` status for ``exit``.
_DEFAULT_HANG_S = 3600.0
_DEFAULT_EXIT_STATUS = 17


class FaultInjected(RuntimeError):
    """The error raised by ``raise`` (and post-sleep ``hang``) faults."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed injection rule."""

    stage: str
    action: str
    attempt: int | None = None
    arg: float | None = None

    def matches(self, stage: str, attempt: int) -> bool:
        return stage == self.stage and (self.attempt is None or attempt == self.attempt)


def parse_fault_spec(text: str) -> tuple[FaultRule, ...]:
    """Parse a fault spec; raises ``ValueError`` on bad grammar."""
    rules = []
    for raw in text.split(","):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad fault rule {raw!r}: expected 'stage[@attempt]:action[:arg]'"
            )
        target, action = parts[0].strip(), parts[1].strip()
        if action not in _ACTIONS:
            raise ValueError(
                f"bad fault rule {raw!r}: unknown action {action!r} "
                f"(choose from {_ACTIONS})"
            )
        attempt = None
        stage = target
        if "@" in target:
            stage, _, attempt_text = target.partition("@")
            try:
                attempt = int(attempt_text)
            except ValueError:
                raise ValueError(
                    f"bad fault rule {raw!r}: attempt {attempt_text!r} is not an integer"
                ) from None
            if attempt < 0:
                raise ValueError(f"bad fault rule {raw!r}: attempt must be >= 0")
        if not stage:
            raise ValueError(f"bad fault rule {raw!r}: empty stage name")
        arg = None
        if len(parts) == 3:
            try:
                arg = float(parts[2])
            except ValueError:
                raise ValueError(
                    f"bad fault rule {raw!r}: arg {parts[2]!r} is not a number"
                ) from None
        rules.append(FaultRule(stage=stage, action=action, attempt=attempt, arg=arg))
    return tuple(rules)


def active_rules() -> tuple[FaultRule, ...]:
    """The rules currently armed via the environment (empty when unarmed)."""
    spec = os.environ.get(FAULT_SPEC_ENV)
    return parse_fault_spec(spec) if spec else ()


def maybe_inject(stage: str, attempt: int) -> None:
    """Fire the first armed rule matching this stage attempt, if any.

    Called inside ``run_task``'s try block, so ``raise`` surfaces as a
    normal transient task error; ``hang`` occupies the worker until the
    engine's timeout reaps it (the post-sleep raise keeps short
    explicit ``arg`` hangs from "succeeding"); ``exit`` kills the
    worker process outright.
    """
    spec = os.environ.get(FAULT_SPEC_ENV)
    if not spec:
        return
    for rule in parse_fault_spec(spec):
        if not rule.matches(stage, attempt):
            continue
        if rule.action == "raise":
            raise FaultInjected(f"injected raise: {stage} attempt {attempt}")
        if rule.action == "hang":
            time.sleep(rule.arg if rule.arg is not None else _DEFAULT_HANG_S)
            raise FaultInjected(f"injected hang elapsed: {stage} attempt {attempt}")
        if rule.action == "exit":
            status = int(rule.arg) if rule.arg is not None else _DEFAULT_EXIT_STATUS
            os._exit(status)
