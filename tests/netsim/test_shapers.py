"""Tests for priority queuing and token-bucket shaping."""

import pytest

from repro.netsim.core import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Node
from repro.netsim.packet import Packet
from repro.netsim.shapers import PriorityQueue, TokenBucketShaper, flow_band_classifier
from repro.netsim.units import mbps


def make_packet(flow=0, seq=0, size=1500):
    return Packet(src=0, dst=1, size=size, flow_id=flow, seq=seq)


class TestClassifier:
    def test_mapping_and_default(self):
        classify = flow_band_classifier({7: 1, 9: 0}, default_band=1)
        assert classify(make_packet(flow=9)) == 0
        assert classify(make_packet(flow=7)) == 1
        assert classify(make_packet(flow=123)) == 1


class TestPriorityQueue:
    def test_high_priority_served_first(self):
        queue = PriorityQueue(10, n_bands=2, classifier=lambda p: 0 if p.flow_id == 1 else 1)
        queue.enqueue(make_packet(flow=2, seq=0))  # low priority
        queue.enqueue(make_packet(flow=1, seq=1))  # high priority
        queue.enqueue(make_packet(flow=2, seq=2))
        served = [queue.dequeue().seq for _ in range(3)]
        assert served == [1, 0, 2]

    def test_fifo_within_band(self):
        queue = PriorityQueue(10, n_bands=1)
        for seq in range(4):
            queue.enqueue(make_packet(seq=seq))
        assert [queue.dequeue().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_per_band_capacity(self):
        queue = PriorityQueue(2, n_bands=2, classifier=lambda p: p.flow_id)
        assert queue.enqueue(make_packet(flow=0, seq=0))
        assert queue.enqueue(make_packet(flow=0, seq=1))
        assert not queue.enqueue(make_packet(flow=0, seq=2))  # band 0 full
        assert queue.enqueue(make_packet(flow=1, seq=3))  # band 1 has room
        assert queue.per_band_dropped == [1, 0]

    def test_band_clamping(self):
        queue = PriorityQueue(4, n_bands=2, classifier=lambda p: 99)
        queue.enqueue(make_packet())
        assert queue.band_of(make_packet()) == 1

    def test_empty_dequeue(self):
        assert PriorityQueue(4).dequeue() is None

    def test_occupancy_and_stats(self):
        queue = PriorityQueue(4, n_bands=2, classifier=lambda p: p.flow_id % 2)
        for seq in range(4):
            queue.enqueue(make_packet(flow=seq, seq=seq))
        assert queue.occupancy == 4
        assert queue.stats.enqueued == 4
        queue.dequeue()
        assert queue.stats.dequeued == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityQueue(0)
        with pytest.raises(ValueError):
            PriorityQueue(4, n_bands=0)

    def test_works_as_link_queue(self):
        """PriorityQueue plugs into a Link via queue_factory."""
        sim = Simulator()
        a, b = Node(sim, 0, "a"), Node(sim, 1, "b")
        classify = flow_band_classifier({1: 0}, default_band=1)
        link = Link(
            sim, a, b, rate_bps=mbps(12), propagation_delay=0.0, queue_packets=100,
            queue_factory=lambda capacity: PriorityQueue(capacity, 2, classify),
        )
        arrivals = []
        b.default_handler = lambda packet: arrivals.append(packet.flow_id)
        # Fill the transmitter, then queue one low- and one high-priority.
        link.forward.send(make_packet(flow=2, seq=0))
        link.forward.send(make_packet(flow=2, seq=1))
        link.forward.send(make_packet(flow=1, seq=2))
        sim.run()
        # The high-priority packet overtakes the queued low-priority one.
        assert arrivals == [2, 1, 2]


class TestTokenBucket:
    def test_burst_passes_immediately(self):
        sim = Simulator()
        released = []
        shaper = TokenBucketShaper(sim, mbps(1), burst_bytes=4500, forward=released.append)
        for seq in range(3):
            shaper.send(make_packet(seq=seq))
        assert len(released) == 3  # 3 x 1500 = bucket depth
        assert shaper.backlog == 0

    def test_excess_paced_at_rate(self):
        sim = Simulator()
        released_times = []
        shaper = TokenBucketShaper(
            sim, mbps(12), burst_bytes=1500, forward=lambda p: released_times.append(sim.now)
        )
        for seq in range(3):
            shaper.send(make_packet(seq=seq))
        sim.run()
        # First conforms; the others wait 1 ms each (1500 B at 12 Mbps).
        assert released_times[0] == pytest.approx(0.0)
        assert released_times[1] == pytest.approx(0.001)
        assert released_times[2] == pytest.approx(0.002)

    def test_long_term_rate_respected(self):
        sim = Simulator()
        released = []
        shaper = TokenBucketShaper(
            sim, mbps(6), burst_bytes=3000, forward=lambda p: released.append(sim.now)
        )
        for seq in range(50):
            shaper.send(make_packet(seq=seq))
        sim.run()
        duration = released[-1] - released[0]
        achieved_bps = (len(released) - 2) * 1500 * 8 / duration  # minus the burst
        assert achieved_bps == pytest.approx(mbps(6), rel=0.1)

    def test_tokens_refill_while_idle(self):
        sim = Simulator()
        released = []
        shaper = TokenBucketShaper(sim, mbps(12), burst_bytes=3000, forward=released.append)
        shaper.send(make_packet(seq=0))
        shaper.send(make_packet(seq=1))
        sim.run()
        # Bucket empty now; wait for a refill window and burst again.
        sim.schedule(0.01, lambda: [shaper.send(make_packet(seq=2))])
        sim.run()
        assert len(released) == 3

    def test_backlog_bound_drops(self):
        sim = Simulator()
        shaper = TokenBucketShaper(
            sim, mbps(1), burst_bytes=1500, forward=lambda p: None, queue_packets=2
        )
        results = [shaper.send(make_packet(seq=seq)) for seq in range(5)]
        assert results.count(False) >= 1
        assert shaper.packets_dropped >= 1

    def test_oversized_packet_rejected(self):
        sim = Simulator()
        shaper = TokenBucketShaper(sim, mbps(1), burst_bytes=1000, forward=lambda p: None)
        with pytest.raises(ValueError):
            shaper.send(make_packet(size=1500))

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TokenBucketShaper(sim, 0.0, 1000, forward=lambda p: None)
        with pytest.raises(ValueError):
            TokenBucketShaper(sim, mbps(1), 0, forward=lambda p: None)
