"""Tests for the serving telemetry."""

import numpy as np

from repro.serve.metrics import LATENCY_WINDOW, OCCUPANCY_BUCKETS, ServingMetrics


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCounters:
    def test_empty_snapshot(self):
        snapshot = ServingMetrics().snapshot()
        assert snapshot["requests_total"] == 0
        assert snapshot["predictions_total"] == 0
        assert snapshot["batches_total"] == 0
        assert snapshot["errors_total"] == 0
        assert snapshot["mean_batch_windows"] == 0.0
        assert snapshot["latency_ms"] == {"window": 0}

    def test_rates_use_elapsed_time(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        metrics.record_batch(n_requests=2, n_windows=10)
        metrics.record_request(0.01)
        metrics.record_request(0.02)
        clock.now += 5.0
        snapshot = metrics.snapshot()
        assert snapshot["predictions_per_s"] == 10 / 5.0
        assert snapshot["requests_per_s"] == 2 / 5.0
        assert snapshot["uptime_s"] == 5.0

    def test_errors_counted_but_not_timed(self):
        metrics = ServingMetrics()
        metrics.record_request(0.5, error=True)
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 1
        assert snapshot["errors_total"] == 1
        assert snapshot["latency_ms"]["window"] == 0

    def test_mean_batch_windows(self):
        metrics = ServingMetrics()
        metrics.record_batch(1, 4)
        metrics.record_batch(3, 12)
        assert metrics.snapshot()["mean_batch_windows"] == 8.0


class TestOccupancyHistogram:
    def test_buckets_by_windows_per_flush(self):
        metrics = ServingMetrics()
        metrics.record_batch(1, 1)      # <=1
        metrics.record_batch(1, 3)      # <=4
        metrics.record_batch(1, 4)      # <=4 (edges are inclusive)
        metrics.record_batch(1, 200)    # >128 (open-ended tail)
        histogram = metrics.snapshot()["batch_occupancy"]
        assert histogram["<=1"] == 1
        assert histogram["<=4"] == 2
        assert histogram[f">{OCCUPANCY_BUCKETS[-1]}"] == 1
        assert sum(histogram.values()) == 4

    def test_labels_cover_every_bucket(self):
        histogram = ServingMetrics().snapshot()["batch_occupancy"]
        assert len(histogram) == len(OCCUPANCY_BUCKETS) + 1


class TestLatencyPercentiles:
    def test_percentiles_match_numpy(self):
        metrics = ServingMetrics()
        latencies = np.linspace(0.001, 0.1, 100)
        for value in latencies:
            metrics.record_request(value)
        reported = metrics.snapshot()["latency_ms"]
        p50, p95, p99 = np.percentile(latencies, (50, 95, 99))
        assert np.isclose(reported["p50"], p50 * 1e3)
        assert np.isclose(reported["p95"], p95 * 1e3)
        assert np.isclose(reported["p99"], p99 * 1e3)
        assert np.isclose(reported["max"], latencies.max() * 1e3)
        assert reported["window"] == 100

    def test_window_is_bounded(self):
        metrics = ServingMetrics()
        for _ in range(LATENCY_WINDOW + 50):
            metrics.record_request(0.001)
        snapshot = metrics.snapshot()
        # The ring keeps only the most recent LATENCY_WINDOW samples...
        assert snapshot["latency_ms"]["window"] == LATENCY_WINDOW
        # ...while the lifetime counter keeps counting.
        assert snapshot["requests_total"] == LATENCY_WINDOW + 50
