"""Figure 4 — the dataset-generation setup, regenerated as trace statistics.

The paper's Fig. 4 is the topology diagram behind the three datasets;
the executable equivalent is: build each scenario, run it, and report
packet counts, delay distributions, drops and (for case 2) per-receiver
delay separation.  The benchmark also measures raw simulation speed.

The per-scenario fan-out goes through the ``repro.runtime`` campaign
engine (one uncached ``trace_stats`` task per scenario), so the
benchmark exercises the same stage code as ``repro sweep``; set
``REPRO_SWEEP_WORKERS`` to fan the scenarios out over a worker pool.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import save_results
from repro.netsim.scenarios import ScenarioKind, build_scenario
from repro.runtime import CampaignEngine, expand_grid, plan_campaign


def _stats_for_scenarios(scale, kinds) -> dict:
    """Fan the per-scenario statistics out through the campaign engine."""
    workers = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))
    specs = expand_grid(scenarios=kinds, scales=[scale.name], seeds=[0])
    plan = plan_campaign(specs, stages=("trace_stats",))
    engine = CampaignEngine(store=None, workers=workers)
    result = engine.run(plan)
    failures = result.failed_tasks()
    assert not failures, failures
    by_scenario = {}
    for task in plan.ordered():
        by_scenario[task.params["scenario"]] = result[task.id]
    return by_scenario


def test_fig4_trace_statistics(scale, benchmark):
    """Regenerate all three Fig. 4 datasets and validate their shape."""

    def run():
        return _stats_for_scenarios(scale, ScenarioKind.ALL)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    save_results("fig4_scenarios", {"stats": stats})

    pretrain = stats[ScenarioKind.PRETRAIN]
    case1 = stats[ScenarioKind.CASE1]
    case2 = stats[ScenarioKind.CASE2]
    # The bottleneck must actually congest: delays spread over >2x.
    assert pretrain["delay_p99_ms"] > 2 * pretrain["delay_p50_ms"]
    # Cross-traffic (case 1) increases pressure on the shared queue.
    assert case1["queue_drops"] >= pretrain["queue_drops"]
    # Case 2 has several receivers with distinct mean path delays.
    means = list(case2["per_receiver_mean_delay_ms"].values())
    assert len(means) >= 2
    assert max(means) > min(means)

    print("\nFig. 4 scenario statistics:")
    for kind, row in stats.items():
        print(
            f"  {kind:9s} packets={row['packets']:7d} messages={row['messages']:6d} "
            f"delay p50/p99 = {row['delay_p50_ms']:.1f}/{row['delay_p99_ms']:.1f} ms "
            f"drops={row['queue_drops']}"
        )


def test_simulator_event_throughput(scale, benchmark):
    """Micro-benchmark: simulator events per second on the pre-training
    scenario (ns-3 replacement cost)."""

    def run():
        handle = build_scenario(scale.scenario(ScenarioKind.PRETRAIN))
        handle.run()
        return handle.sim.events_processed

    events = benchmark(run)
    assert events > 1_000
