#!/usr/bin/env python
"""Continual learning: detecting when a deployed NTT goes stale (§5).

Deploys a pre-trained delay model, monitors it on fresh traffic from the
same environment (no drift expected), then switches the environment to
case-1 cross-traffic (drift expected) and watches the Page-Hinkley
detector fire.  Also demonstrates attention inspection on the deployed
model.  Everything flows through the ``repro.api`` facade, so the
deployment artifacts come from the cache when available.

Run::

    python examples/continual_monitoring.py
    python examples/continual_monitoring.py --scale small
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.api import DriftMonitor, Experiment, ExperimentSpec, attention_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    args = parser.parse_args()

    exp = Experiment(ExperimentSpec(scenario="pretrain", scale=args.scale))

    print("== Deploying a pre-trained NTT")
    pre = exp.pretrained()
    pretrain_bundle = exp.bundle("pretrain")

    print("== What does the deployed model attend to?")
    sample = pretrain_bundle.test.subset(np.arange(min(16, len(pretrain_bundle.test))))
    summary = attention_summary(
        pre.model.ntt, pre.pipeline.transform_features(sample), sample.receiver
    )
    print("   " + summary.format().replace("\n", "\n   "))

    print("== Monitoring on in-distribution traffic (no drift expected)")
    monitor = DriftMonitor(
        pre.model, pre.pipeline, baseline=pretrain_bundle.val, sensitivity=50.0
    )
    report = monitor.observe(pretrain_bundle.test)
    print(
        f"   {report.windows_seen} windows, degradation "
        f"{report.degradation_ratio:.2f}x, statistic {report.statistic:.2e} "
        f"/ threshold {report.threshold:.2e} -> drifted={report.drifted}"
    )

    print("== Environment changes: cross-traffic appears (case 1)")
    case1 = exp.bundle("case1")
    report = monitor.observe(case1.test)
    print(
        f"   {report.windows_seen} windows, degradation "
        f"{report.degradation_ratio:.2f}x, statistic {report.statistic:.2e} "
        f"/ threshold {report.threshold:.2e} -> drifted={report.drifted}"
    )
    if report.drifted:
        print("   -> time to fine-tune on fresh data (monitor.reset() afterwards)")
    else:
        print("   -> model still healthy at this sensitivity")


if __name__ == "__main__":
    main()
