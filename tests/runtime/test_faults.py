"""Chaos tests: fault injection, retry policy, timeouts, journals, resume.

The fault harness (:mod:`repro.testing.faults`) is armed through the
``REPRO_FAULT_SPEC`` environment variable, which pool workers inherit —
so these tests exercise the *real* recovery paths: transient errors
retried on fresh attempts, hung workers reaped at their wall-clock
timeout, killed workers recovered through a pool respawn, and a
SIGKILLed engine resumed from its journal with bit-identical results.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import ArtifactStore, TrainSettings
from repro.runtime import (
    CampaignEngine,
    RetryPolicy,
    expand_grid,
    plan_campaign,
    read_journal,
    run_campaign,
)
from repro.testing import (
    FAULT_SPEC_ENV,
    FaultInjected,
    FaultRule,
    maybe_inject,
    parse_fault_spec,
)

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)

REPO_ROOT = Path(__file__).resolve().parents[2]


def fast_specs(scenarios=("pretrain",), seeds=(0,), **common):
    return expand_grid(
        scenarios=scenarios, scales=["smoke"], seeds=seeds,
        pretrain=FAST, finetune=FAST, **common,
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture(autouse=True)
def unarmed(monkeypatch):
    """No test inherits a fault spec from the environment by accident."""
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)


class TestFaultSpecParsing:
    def test_single_rule(self):
        (rule,) = parse_fault_spec("pretrain@0:raise")
        assert rule == FaultRule(stage="pretrain", action="raise", attempt=0)

    def test_full_grammar(self):
        rules = parse_fault_spec("pretrain@0:raise, traces:hang:30 ,bundle@1:exit:9")
        assert rules == (
            FaultRule(stage="pretrain", action="raise", attempt=0),
            FaultRule(stage="traces", action="hang", arg=30.0),
            FaultRule(stage="bundle", action="exit", attempt=1, arg=9.0),
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "pretrain",                # no action
            "pretrain:explode",        # unknown action
            "pretrain@x:raise",        # non-integer attempt
            "pretrain@-1:raise",       # negative attempt
            "@0:raise",                # empty stage
            "pretrain:hang:soon",      # non-numeric arg
            "a:b:c:d",                 # too many fields
        ],
    )
    def test_bad_grammar_rejected(self, bad):
        with pytest.raises(ValueError, match="bad fault rule"):
            parse_fault_spec(bad)

    def test_unarmed_injection_is_a_noop(self):
        maybe_inject("traces", 0)  # must not raise

    def test_raise_fires_on_match(self, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "traces@0:raise")
        with pytest.raises(FaultInjected):
            maybe_inject("traces", 0)
        maybe_inject("traces", 1)   # attempt filter
        maybe_inject("bundle", 0)   # stage filter

    def test_rule_without_attempt_fires_every_attempt(self, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "traces:raise")
        for attempt in (0, 1, 5):
            with pytest.raises(FaultInjected):
                maybe_inject("traces", attempt)

    def test_hang_sleeps_then_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "traces@0:hang:0.01")
        with pytest.raises(FaultInjected, match="hang"):
            maybe_inject("traces", 0)


class TestRetryPolicy:
    def test_fatal_types_classified_fatal(self):
        policy = RetryPolicy()
        for name in ("ValueError", "TypeError", "KeyError", "AssertionError"):
            assert policy.classify(name) == "fatal"

    def test_runtime_errors_are_transient(self):
        policy = RetryPolicy()
        assert policy.classify("RuntimeError") == "transient"
        assert policy.classify("FaultInjected") == "transient"
        assert policy.classify(None) == "transient"

    def test_engine_classes_pass_through(self):
        policy = RetryPolicy()
        assert policy.classify("timeout") == "timeout"
        assert policy.classify("worker-lost") == "worker-lost"

    def test_should_retry_respects_class_and_budget(self):
        policy = RetryPolicy(retries=2)
        assert policy.should_retry("transient", 1)
        assert policy.should_retry("timeout", 2)
        assert not policy.should_retry("transient", 3)
        assert not policy.should_retry("fatal", 1)

    def test_default_backoff_matches_historical_formula(self):
        policy = RetryPolicy()
        entropy, spawn_key = 123, (4,)
        for attempt in (1, 2, 3, 4, 5):
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
            )
            expected = min(0.25 * 2 ** (attempt - 1), 2.0) + float(
                rng.uniform(0.0, 0.25, size=attempt)[-1]
            )
            assert policy.backoff_s(entropy, spawn_key, attempt) == expected

    def test_backoff_is_deterministic_in_attempt(self):
        policy = RetryPolicy()
        first = policy.backoff_s(7, (1,), 2)
        again = policy.backoff_s(7, (1,), 2)
        assert first == again
        assert policy.backoff_s(7, (2,), 2) != first  # task-keyed

    def test_payload_roundtrip(self):
        policy = RetryPolicy(retries=3, backoff_base_s=0.1, backoff_cap_s=1.0,
                             jitter_cap_s=0.05)
        assert RetryPolicy.from_payload(policy.to_payload()) == policy

    def test_missing_payload_gives_default(self):
        assert RetryPolicy.from_payload(None) == RetryPolicy()

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)


class TestJournal:
    def test_journal_path_lives_under_manifests(self, store):
        path = store.journal_path("abc123")
        assert path.name == "abc123.journal.jsonl"
        assert path.parent == store.root / "manifests"

    def test_scratch_dir_created(self, store):
        scratch = store.scratch_dir("heartbeats", "abc123")
        assert scratch.is_dir()
        assert scratch == store.root / "scratch" / "heartbeats" / "abc123"

    def test_completed_run_writes_valid_journal(self, store):
        result = run_campaign(fast_specs(), store=store)
        path = store.journal_path(result.manifest["campaign_id"])
        assert path.exists()
        lines = path.read_text().splitlines()
        entries = [json.loads(line) for line in lines]  # every line valid JSON
        assert entries[0]["type"] == "campaign"
        assert entries[-1]["type"] == "complete"
        state = read_journal(path)
        assert not state.torn_tail
        assert state.header["campaign_id"] == result.manifest["campaign_id"]
        assert state.header["stages"]  # resumable plan records its stages
        assert set(state.done_records()) == set(result.results)
        assert state.completed["summary"] == result.summary

    def test_journal_strips_telemetry(self, store):
        result = run_campaign(fast_specs(), store=store, stages=("trace_stats",))
        state = read_journal(store.journal_path(result.manifest["campaign_id"]))
        for record in state.records.values():
            assert "spans" not in record
            assert "metrics" not in record

    def test_torn_tail_tolerated(self, store):
        result = run_campaign(fast_specs(), store=store)
        path = store.journal_path(result.manifest["campaign_id"])
        whole = read_journal(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "task", "id": "tru')  # crash mid-write
        state = read_journal(path)
        assert state.torn_tail
        assert state.done_records() == whole.done_records()


class TestChaosPool:
    """Injected faults against a real 2-worker pool."""

    def test_transient_fault_retried_to_success(self, store, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "trace_stats@0:raise")
        engine = CampaignEngine(store=store, workers=2, retries=1)
        result = engine.run(plan_campaign(fast_specs(seeds=(0, 1)), stages=("trace_stats",)))
        assert result.ok
        for row in result.manifest["tasks"]:
            assert row["attempts"] == 2
            assert row["failures"] == [
                {"attempt": 0, "error_class": "transient", "error_type": "FaultInjected"}
            ]

    def test_exhausted_retries_settle_as_error(self, store, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "trace_stats:raise")  # every attempt
        engine = CampaignEngine(store=store, workers=2, retries=1)
        result = engine.run(plan_campaign(fast_specs(seeds=(0, 1)), stages=("trace_stats",)))
        assert not result.ok
        for row in result.manifest["tasks"]:
            assert row["status"] == "error"
            assert row["attempts"] == 2
            assert row["error_class"] == "transient"

    def test_fatal_error_not_retried(self, monkeypatch):
        from repro.api.stages import STAGE_REGISTRY

        def broken(experiment, inputs, params):
            raise ValueError("contract violation: fails identically every attempt")

        monkeypatch.setattr(STAGE_REGISTRY.get("trace_stats"), "run", broken)
        result = run_campaign(fast_specs(), stages=("trace_stats",), store=None, retries=3)
        assert not result.ok
        (row,) = result.manifest["tasks"]
        assert row["attempts"] == 1  # fatal: the retry budget is not spent
        assert row["error_class"] == "fatal"

    def test_killed_worker_recovered_by_pool_respawn(self, store, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "trace_stats@0:exit")
        engine = CampaignEngine(store=store, workers=2, retries=1)
        result = engine.run(plan_campaign(fast_specs(seeds=(0, 1)), stages=("trace_stats",)))
        assert result.ok
        names = [event["event"] for event in result.manifest["events"]]
        assert "runtime.worker_lost" in names
        assert "runtime.pool_respawned" in names
        for row in result.manifest["tasks"]:
            assert row["status"] == "done"
            assert any(f["error_class"] == "worker-lost" for f in row["failures"])

    def test_hung_task_reaped_and_retried(self, store, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "trace_stats@0:hang:60")
        engine = CampaignEngine(
            store=store, workers=2, retries=1,
            task_timeout_s=2.0, heartbeat_interval_s=0.2,
        )
        result = engine.run(plan_campaign(fast_specs(seeds=(0, 1)), stages=("trace_stats",)))
        assert result.ok
        names = [event["event"] for event in result.manifest["events"]]
        assert "runtime.task_timeout" in names
        for row in result.manifest["tasks"]:
            assert row["status"] == "done"
            assert any(f["error_class"] == "timeout" for f in row["failures"])

    def test_timeout_knob_resolution(self, store):
        specs = fast_specs(stage_params={"trace_stats": {"timeout_s": 1.5}})
        plan = plan_campaign(specs, stages=("trace_stats",))
        (task,) = plan.ordered()
        assert CampaignEngine(store=store)._task_timeout(task) == 1.5
        # The stage knob overrides the engine default; unknobbed stages
        # fall back to it.
        engine = CampaignEngine(store=store, task_timeout_s=7.0)
        assert engine._task_timeout(task) == 1.5
        (plain,) = plan_campaign(fast_specs(), stages=("trace_stats",)).ordered()
        assert engine._task_timeout(plain) == 7.0
        assert CampaignEngine(store=store)._task_timeout(plain) is None

    def test_engine_timeout_never_enters_task_payloads(self, store):
        # The engine default is resolved at execution time, so tuning it
        # can never change a task id, cache key or worker payload.
        plan = plan_campaign(fast_specs(), stages=("trace_stats",))
        (task,) = plan.ordered()
        engine = CampaignEngine(store=store, task_timeout_s=7.0)
        payload = engine._payload(plan, task, str(store.root), 0, {})
        assert "timeout_s" not in payload["params"]


class TestCrashAndResume:
    def _engine_killed_mid_campaign(self, store_path):
        """Run a serial campaign in a subprocess whose evaluate stage
        ``os._exit``\\ s the engine process — the hardest crash there is."""
        script = (
            "from repro.api import ArtifactStore, TrainSettings\n"
            "from repro.runtime import expand_grid, run_campaign\n"
            "fast = TrainSettings(epochs=1, batch_size=32, patience=None)\n"
            "specs = expand_grid(scenarios=['pretrain'], scales=['smoke'],\n"
            "                    seeds=[0], pretrain=fast, finetune=fast)\n"
            f"run_campaign(specs, store=ArtifactStore({str(store_path)!r}))\n"
        )
        env = {
            **os.environ,
            FAULT_SPEC_ENV: "evaluate@0:exit:17",
            "PYTHONPATH": str(REPO_ROOT / "src"),
        }
        return subprocess.run(
            [sys.executable, "-c", script],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True, timeout=600,
        )

    def test_sigkilled_engine_leaves_valid_journal_and_resumes(self, tmp_path):
        store_path = tmp_path / "cache"
        proc = self._engine_killed_mid_campaign(store_path)
        assert proc.returncode == 17, proc.stderr

        store = ArtifactStore(store_path)
        (path,) = (store.root / "manifests").glob("*.journal.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # valid JSONL all the way down
        state = read_journal(path)
        assert not state.torn_tail
        assert state.header is not None
        assert state.completed is None  # the run never closed
        done = state.done_records()
        assert set(record["stage"] for record in done.values()) == {
            "traces", "bundle", "pretrain",
        }

        # Resume re-executes only the evaluate task...
        engine = CampaignEngine(store=store)
        result = engine.resume(state.header["campaign_id"])
        assert result.ok
        assert result.summary["total"] == 4
        assert result.summary["executed"] == 1
        assert sorted(result.manifest["resumed_tasks"]) == sorted(done)

        # ...and lands bit-identical to a fault-free serial run.
        fresh = run_campaign(fast_specs(), store=ArtifactStore(tmp_path / "fresh"))
        assert set(result.results) == set(fresh.results)
        for task_id, payload in fresh.results.items():
            if task_id.startswith("evaluate:"):
                assert result.results[task_id] == payload

    def test_resume_of_completed_campaign_replays_everything(self, store):
        first = run_campaign(fast_specs(), store=store)
        result = CampaignEngine(store=store).resume(first.manifest["campaign_id"])
        assert result.ok
        assert result.summary["executed"] == 0
        assert len(result.manifest["resumed_tasks"]) == first.summary["total"]
        assert result.results == first.results

    def test_resume_without_journal_raises(self, store):
        with pytest.raises(ValueError, match="no journal"):
            CampaignEngine(store=store).resume("deadbeef")

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            CampaignEngine(store=None).resume("deadbeef")

    def test_engine_crash_writes_crashed_manifest(self, store, monkeypatch):
        def boom(payload, experiment=None):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.runtime.engine.run_task", boom)
        plan = plan_campaign(fast_specs())
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(store=store).run(plan)
        manifest = store.get_manifest(plan.campaign_id)
        assert manifest["status"] == "crashed"
        assert manifest["summary"]["pending"] == len(plan)
        state = read_journal(store.journal_path(plan.campaign_id))
        assert state.completed["status"] == "crashed"


class TestResumeCLI:
    def test_missing_journal_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["resume", "deadbeef", "--cache-dir", str(tmp_path / "cache")])
        assert code == 2
        assert "no journal" in capsys.readouterr().err

    def test_cli_resume_completes_campaign(self, store, capsys):
        first = run_campaign(fast_specs(), store=store, stages=("trace_stats",))
        from repro.cli import main

        code = main([
            "resume", first.manifest["campaign_id"],
            "--cache-dir", str(store.root),
        ])
        assert code == 0
        assert "resumed" in capsys.readouterr().out
