"""The float32 compute-precision knob and its cache-key folding.

``precision="float32"`` is opt-in per training stage via
``ExperimentSpec.stage_params``; the float64 default must leave every
planned key byte-identical (the golden key-stability tests pin that),
while float32 artifacts get their own content addresses.
"""

import numpy as np
import pytest

from repro.api import ArtifactStore, Experiment, ExperimentSpec
from repro.api.store import precision_key
from repro.runtime.plan import plan_campaign


def _keys_by_stage(spec):
    plan = plan_campaign([spec])
    return {task.stage: task.key for task in plan.ordered()}


class TestPrecisionKey:
    def test_default_is_identity(self):
        assert precision_key("abc123", "float64") == "abc123"
        assert precision_key("abc123", None) == "abc123"
        assert precision_key(None, "float32") is None

    def test_float32_rekeys(self):
        derived = precision_key("abc123", "float32")
        assert derived != "abc123"
        assert derived == precision_key("abc123", "float32")


class TestPlannedKeys:
    def test_pretrain_precision_moves_model_keys_only(self):
        default = _keys_by_stage(ExperimentSpec(scenario="case1", scale="smoke"))
        fp32 = _keys_by_stage(
            ExperimentSpec(
                scenario="case1",
                scale="smoke",
                stage_params={"pretrain": {"precision": "float32"}},
            )
        )
        # Simulation/dataset artifacts are precision-independent.
        assert fp32["traces"] == default["traces"]
        assert fp32["bundle"] == default["bundle"]
        # Everything downstream of training re-keys.
        assert fp32["pretrain"] != default["pretrain"]
        assert fp32["finetune"] != default["finetune"]
        assert fp32["evaluate"] != default["evaluate"]

    def test_finetune_precision_keeps_pretrain_key(self):
        default = _keys_by_stage(ExperimentSpec(scenario="case1", scale="smoke"))
        fp32 = _keys_by_stage(
            ExperimentSpec(
                scenario="case1",
                scale="smoke",
                stage_params={"finetune": {"precision": "float32"}},
            )
        )
        assert fp32["pretrain"] == default["pretrain"]
        assert fp32["finetune"] != default["finetune"]

    def test_precision_recorded_in_task_params(self):
        plan = plan_campaign(
            [
                ExperimentSpec(
                    scenario="pretrain",
                    scale="smoke",
                    stage_params={"pretrain": {"precision": "float32"}},
                )
            ]
        )
        pretrain_tasks = [task for task in plan.ordered() if task.stage == "pretrain"]
        assert pretrain_tasks[0].params["precision"] == "float32"


class TestExperimentPrecision:
    def test_float32_pretrain_trains_in_float32(self, tmp_path):
        spec = ExperimentSpec(
            scenario="pretrain",
            scale="smoke",
            stage_params={"pretrain": {"precision": "float32"}},
        )
        experiment = Experiment(spec, store=ArtifactStore(tmp_path / "cache"))
        result = experiment.pretrained()
        for _name, parameter in result.model.named_parameters():
            assert parameter.data.dtype == np.float32
        assert np.isfinite(result.test_mse_seconds2)

    def test_float32_and_float64_cached_separately(self, tmp_path):
        store = ArtifactStore(tmp_path / "cache")
        base = ExperimentSpec(scenario="pretrain", scale="smoke")
        fp32 = base.with_overrides(
            stage_params={"pretrain": {"precision": "float32"}}
        )
        result64 = Experiment(base, store=store).pretrained()
        result32 = Experiment(fp32, store=store).pretrained()
        assert result64.model.parameters()[0].data.dtype == np.float64
        assert result32.model.parameters()[0].data.dtype == np.float32
        # Same spec hash → both runs share simulation artifacts, but the
        # checkpoints live under different keys.
        checkpoints = list((tmp_path / "cache" / "checkpoints").glob("*.npz"))
        assert len(checkpoints) == 2

    def test_invalid_precision_rejected(self, tmp_path):
        spec = ExperimentSpec(
            scenario="pretrain",
            scale="smoke",
            stage_params={"pretrain": {"precision": "float16"}},
        )
        experiment = Experiment(spec, store=ArtifactStore(tmp_path / "cache"))
        with pytest.raises(ValueError):
            experiment.pretrained()
