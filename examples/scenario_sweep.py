#!/usr/bin/env python
"""Scenario sweep: fan a grid of experiments out on a worker pool.

The paper's pitch is generalization across *many* network scenarios;
the ``repro.runtime`` campaign engine makes exploring that space cheap:

1. expand a scenario × seed grid into declarative specs;
2. plan them as one deduplicated task graph — the two scenarios share a
   pre-training environment per seed, so the expensive pretrain stage is
   planned once per seed, not once per spec;
3. execute the graph on a process pool with per-task status, timings
   and cache hit/miss recorded in a JSON campaign manifest;
4. re-run the same campaign: every stage is served from the
   content-addressed artifact store (100% cache hits, no retraining).

Run::

    python examples/scenario_sweep.py                # 2 workers, smoke
    python examples/scenario_sweep.py --workers 4
    python examples/scenario_sweep.py --scale small  # a few minutes

The same engine backs the ``repro sweep`` CLI::

    python -m repro sweep --scenarios pretrain,case1 --seeds 0,1 --workers 2
"""

from __future__ import annotations

import argparse
import json

from repro.api import ArtifactStore
from repro.runtime import CampaignEngine, expand_grid, plan_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-dir", default=None, help="artifact store root")
    args = parser.parse_args()

    store = ArtifactStore(args.cache_dir)
    specs = expand_grid(
        scenarios=["pretrain", "case1"], scales=[args.scale], seeds=[0, 1]
    )
    plan = plan_campaign(specs)
    print(f"== 1. Planned {len(specs)} specs as {len(plan)} deduplicated tasks")
    print(plan.describe(store))

    print(f"\n== 2. Executing on {args.workers} worker(s)")
    engine = CampaignEngine(store=store, workers=args.workers)
    result = engine.run(plan)
    print(result.format_summary())

    print("\n== 3. Per-spec delay MSE vs. naive baselines (from the manifest)")
    for task in result.manifest["tasks"]:
        if task["stage"] != "evaluate" or task["status"] != "done":
            continue
        row = task["result"]
        ewma = row["baselines"]["ewma"]["delay_mse"]
        print(
            f"   {row['scenario']:10s} model {row['model_mse'] * 1e3:8.4f} x1e-3 s^2"
            f"   ewma {ewma * 1e3:8.4f}   ({row['n_test_windows']} windows)"
        )

    print("\n== 4. Re-running the identical campaign (served from the store)")
    rerun = engine.run(plan)
    summary = rerun.summary
    print(rerun.format_summary())
    print(
        f"   cache hits {summary['cache_hits']}/{summary['total']} — "
        f"{'no retraining' if summary['executed'] == 0 else 'recomputed work!'}"
    )

    manifest = json.loads(rerun.manifest_path.read_text())
    print(f"\n== 5. Manifest at {rerun.manifest_path}")
    print(
        "   keys: "
        + ", ".join(sorted(key for key in manifest if key != "tasks"))
        + f", tasks[{len(manifest['tasks'])}]"
    )


if __name__ == "__main__":
    main()
