"""The Network Traffic Transformer (the paper's contribution, §3).

Three stages — embedding, multi-timescale aggregation, transformer
encoder — producing a context-rich encoded sequence consumed by small
task-specific decoders (delay prediction for pre-training, message
completion time for fine-tuning).
"""

from repro.core.features import FeatureSpec, FeaturePipeline
from repro.core.aggregation import AggregationSpec, Aggregator
from repro.core.model import NTT, NTTConfig, NTTForDelay, NTTForMCT
from repro.core.decoders import DelayDecoder, MCTDecoder
from repro.core.baselines import evaluate_baselines, ewma_predictions, last_observed_predictions

__all__ = [
    "FeatureSpec",
    "FeaturePipeline",
    "AggregationSpec",
    "Aggregator",
    "NTT",
    "NTTConfig",
    "NTTForDelay",
    "NTTForMCT",
    "DelayDecoder",
    "MCTDecoder",
    "evaluate_baselines",
    "ewma_predictions",
    "last_observed_predictions",
]
