#!/usr/bin/env python
"""Quickstart: simulate traffic, pre-train an NTT, predict packet delays.

This is the 5-minute tour of the library:

1. simulate the paper's pre-training scenario (Fig. 4) with the built-in
   discrete-event simulator;
2. window the packet trace into training examples;
3. pre-train a small Network Traffic Transformer on masked delay
   prediction;
4. compare its delay predictions against the naive baselines of Table 1.

Run::

    python examples/quickstart.py             # fast (smoke scale)
    python examples/quickstart.py --scale small   # a few minutes
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.baselines import evaluate_baselines
from repro.core.evaluation import predict_delay
from repro.core.pipeline import ExperimentContext, get_scale
from repro.netsim.scenarios import ScenarioKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    args = parser.parse_args()

    scale = get_scale(args.scale)
    context = ExperimentContext(scale)

    print(f"== 1. Simulating the Fig. 4 pre-training scenario ({scale.name} scale)")
    bundle = context.bundle(ScenarioKind.PRETRAIN)
    print(
        f"   {bundle.n_packets} packets -> {bundle.n_windows} windows "
        f"of {bundle.window_config.window_len} packets "
        f"(train {len(bundle.train)} / val {len(bundle.val)} / test {len(bundle.test)})"
    )

    print("== 2. Pre-training the NTT on masked delay prediction")
    result = context.pretrained()
    config = result.model.config
    print(
        f"   model: {config.aggregation.describe()}, d_model={config.d_model}, "
        f"{config.n_layers} encoder layers, "
        f"{result.model.num_parameters()} parameters"
    )
    print(
        f"   {result.history.epochs_run} epochs in {result.history.wall_time:.0f}s; "
        f"train loss {result.history.train_loss[0]:.4f} -> "
        f"{result.history.final_train_loss:.4f}"
    )

    print("== 3. Delay prediction on the held-out test set (MSE, s^2 x1e-3)")
    baselines = evaluate_baselines(bundle.test)
    print(f"   NTT (pre-trained): {result.test_mse_scaled:10.4f}")
    for name, row in baselines.items():
        print(f"   {name:17s}: {row['delay_mse'] * 1e3:10.4f}")

    print("== 4. A few sample predictions (milliseconds)")
    sample = bundle.test.subset(np.arange(min(5, len(bundle.test))))
    predictions = predict_delay(result.model, result.pipeline, sample)
    for predicted, actual in zip(predictions, sample.delay_target):
        print(f"   predicted {predicted * 1e3:7.2f} ms   actual {actual * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
