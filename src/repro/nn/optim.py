"""Optimizers: SGD (+momentum), Adam and AdamW, plus gradient clipping.

The default update path is allocation-free: moment/velocity state lives
in preallocated buffers updated strictly in place (``np.multiply(...,
out=...)``), with a small per-optimizer scratch pool for the two
temporaries an Adam step needs.  Every in-place expression replays the
composite formula's exact operation order, so parameter trajectories are
bit-identical to the original allocating implementation (kept callable
via :func:`repro.nn.fastpath.composite_ops`).
"""

# Optimizer updates run once per parameter per training step — the
# hottest code outside the kernels. Lint enforces the allocation-free
# contract file-wide; the composite escape hatches below carry
# justified allow() pragmas because replaying the allocating formulas
# verbatim is exactly what keeps them bit-identical.
# repro: hot

from __future__ import annotations

import math

import numpy as np

from repro.nn import fastpath
from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


class Optimizer:
    """Base class; holds the parameter list and the shared step counter."""

    def __init__(self, parameters: list[Parameter], lr: float):
        parameters = list(parameters)
        if not parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = parameters
        self.lr = float(lr)
        self.steps = 0
        #: (shape, dtype, slot) → reusable scratch buffer for in-place
        #: updates; at most two live per distinct parameter shape.
        self._scratch: dict[tuple, np.ndarray] = {}

    def _scratch_for(self, array: np.ndarray, slot: int = 0) -> np.ndarray:
        key = (array.shape, array.dtype.str, slot)
        buffer = self._scratch.get(key)
        if buffer is None:
            buffer = np.empty_like(array)  # repro: allow(hot-loop-alloc): pool miss — one-time buffer per (shape, dtype, slot)
            self._scratch[key] = buffer
        return buffer

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored."""
        self.steps += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            self._update(index, parameter)

    def _update(self, index: int, parameter: Parameter) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = parameter.grad
        if not fastpath.fused_ops_enabled():  # repro: allow(hot-loop-alloc): composite escape hatch replays the allocating formulas verbatim for bit-identity
            if self.momentum > 0.0:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                grad = velocity
            parameter.data = parameter.data - self.lr * grad
            return
        if self.momentum > 0.0:
            velocity = self._velocity.get(index)
            if velocity is None:
                velocity = np.zeros_like(parameter.data)  # repro: allow(hot-loop-alloc): one-time momentum state on first sight of a parameter
                self._velocity[index] = velocity
            np.multiply(velocity, self.momentum, out=velocity)
            velocity += grad
            grad = velocity
        update = self._scratch_for(parameter.data)
        np.multiply(grad, self.lr, out=update)
        parameter.data -= update


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}

    def _update(self, index: int, parameter: Parameter) -> None:
        grad = parameter.grad
        if not fastpath.fused_ops_enabled():  # repro: allow(hot-loop-alloc): composite escape hatch replays the allocating formulas verbatim for bit-identity
            m = self._m.get(index)
            v = self._v.get(index)
            if m is None:
                m = np.zeros_like(parameter.data)
                v = np.zeros_like(parameter.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[index] = m
            self._v[index] = v
            m_hat = m / (1.0 - self.beta1**self.steps)
            v_hat = v / (1.0 - self.beta2**self.steps)
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            return
        m = self._m.get(index)
        if m is None:  # repro: allow(hot-loop-alloc): one-time moment state on first sight of a parameter
            m = np.zeros_like(parameter.data)
            self._m[index] = m
            self._v[index] = np.zeros_like(parameter.data)
        v = self._v[index]
        # In-place moment updates; term order mirrors the composite
        # formula (``(1-b)*grad`` first, then the product with ``grad``)
        # so every float matches the allocating path bit-for-bit.
        tmp = self._scratch_for(parameter.data, slot=0)
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=tmp)
        m += tmp
        np.multiply(v, self.beta2, out=v)
        np.multiply(grad, 1.0 - self.beta2, out=tmp)
        np.multiply(tmp, grad, out=tmp)
        v += tmp
        update = self._scratch_for(parameter.data, slot=1)
        np.divide(m, 1.0 - self.beta1**self.steps, out=update)
        np.multiply(update, self.lr, out=update)
        denom = tmp
        np.divide(v, 1.0 - self.beta2**self.steps, out=denom)
        np.sqrt(denom, out=denom)
        denom += self.eps
        np.divide(update, denom, out=update)
        parameter.data -= update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2019)."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps)
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.weight_decay = weight_decay

    def _update(self, index: int, parameter: Parameter) -> None:
        if self.weight_decay:
            if fastpath.fused_ops_enabled():
                parameter.data *= 1.0 - self.lr * self.weight_decay
            else:
                # repro: allow(hot-loop-alloc): composite escape hatch keeps the allocating formula bit-exact
                parameter.data = parameter.data * (1.0 - self.lr * self.weight_decay)
        super()._update(index, parameter)


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Short transformer training runs on
    heavy-tailed targets occasionally produce gradient spikes; clipping
    keeps Adam's second-moment estimates sane.

    The norm accumulates in a single pass over the parameters (no
    intermediate gradient list), squaring into a reusable scratch buffer
    per shape; scaling happens in place.  Accumulation order and every
    arithmetic step match the original implementation exactly.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = list(parameters)
    total_squared = 0.0
    any_grad = False
    for parameter in parameters:
        grad = parameter.grad
        if grad is None:
            continue
        any_grad = True
        squared = fastpath.scratch(grad.shape, grad.dtype)
        np.multiply(grad, grad, out=squared)
        total_squared += float(squared.sum())
    if not any_grad:
        return 0.0
    total = math.sqrt(total_squared)
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        # Guard against the (exotic) case of two parameters sharing one
        # gradient array — in-place scaling must touch it exactly once.
        seen: set[int] = set()
        for parameter in parameters:
            grad = parameter.grad
            if grad is None or id(grad) in seen:
                continue
            seen.add(id(grad))
            np.multiply(grad, scale, out=grad)
    return total
