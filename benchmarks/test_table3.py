"""Table 3 — generalization on the larger topology (case 2).

Paper values (delay MSE ×10⁻³ / training time):

    | Pre-trained, fine-tune full data | 0.004 | 10h |
    | Pre-trained, fine-tune 10% data  | 0.035 | 8h  |
    | From scratch, full data          | 5.2   | 20h |
    | From scratch, 10% data           | 8.2   | 11h |
    | (baselines, not shown)           | 11.2 / 4.0 |
    | (without addressing, not shown)  | 2.8   |

Expected shape: on the harder multi-receiver topology, fine-tuning a
pre-trained model works while from-scratch training is dramatically
worse (paper: ~3 orders of magnitude); dropping receiver IDs hurts
badly because the model cannot tell paths apart.
"""

from __future__ import annotations

from benchmarks.conftest import save_results
from repro.core.pipeline import format_rows, run_table3


def test_table3_larger_topology(scale, context, benchmark):
    rows = benchmark.pedantic(
        lambda: run_table3(scale, context), rounds=1, iterations=1
    )
    save_results("table3", {"rows": rows})
    print("\nTable 3 (delay MSE s^2 x1e-3, fine-tuning wall time s):")
    print(format_rows(rows))

    for row in rows.values():
        assert row["delay_mse"] >= 0

    if scale.name == "smoke":
        return  # smoke scale validates plumbing, not learning quality

    # Pre-training is essential on the larger topology: fine-tuned
    # models beat from-scratch on both dataset sizes.
    assert rows["pretrained_full"]["delay_mse"] <= rows["scratch_full"]["delay_mse"]
    assert rows["pretrained_10pct"]["delay_mse"] <= rows["scratch_10pct"]["delay_mse"]
    # Without receiver IDs the model cannot differentiate paths: worse
    # than the full pre-trained model (paper: 2.8 vs 0.004).
    assert (
        rows["without_receiver_id"]["delay_mse"]
        > rows["pretrained_full"]["delay_mse"]
    )
