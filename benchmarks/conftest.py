"""Shared benchmark fixtures.

The experiment context (datasets + the shared pre-trained NTT) is
session-scoped and store-backed through ``repro.api``: pre-training
dominates wall time, all three table benchmarks reuse it, and repeated
benchmark sessions are served from the on-disk artifact store exactly as
the paper reuses one pre-trained model.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` (seconds; the
default, so the full suite completes in CI), ``small`` (minutes) or
``paper`` (hours).  Set ``REPRO_CACHE_DIR`` to relocate the artifact
store.  Note the store makes repeat sessions measure cache loads, not
training — set ``REPRO_BENCH_NO_CACHE=1`` when the training-time
columns themselves are the experiment.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.api import Experiment, ExperimentSpec, get_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


def _session_scale():
    """The benchmark session's scale — the single source of truth for
    both the fixtures and result-artifact stamping/routing."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "smoke"))


@pytest.fixture(scope="session")
def scale():
    return _session_scale()


@pytest.fixture(scope="session")
def experiment(scale):
    spec = ExperimentSpec(scenario="pretrain", scale=scale.name)
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return Experiment.uncached(spec)
    return Experiment(spec)


@pytest.fixture(scope="session")
def context(experiment):
    return experiment.context


def save_results(name: str, payload: dict) -> Path:
    """Persist one benchmark's result rows as JSON for EXPERIMENTS.md.

    Every payload is stamped with the session scale so artifacts are
    self-describing.  Smoke-scale runs (the tier-1 default) land in the
    gitignored ``bench_results/smoke/`` so they never overwrite the
    committed small/paper-scale artifacts.
    """
    scale_name = _session_scale().name
    payload = {**payload, "scale": scale_name}
    out_dir = RESULTS_DIR / "smoke" if scale_name == "smoke" else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path
