"""Tests for the statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import OnlineStats, ewma, percentile_summary


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.min == 5.0 and stats.max == 5.0

    def test_matches_numpy(self, rng):
        values = rng.normal(10.0, 3.0, size=500)
        stats = OnlineStats()
        stats.extend(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(values.mean(), rel=1e-12)
        assert stats.variance == pytest.approx(values.var(), rel=1e-9)
        assert stats.min == values.min()
        assert stats.max == values.max()

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_property_mean_within_bounds(self, values):
        stats = OnlineStats()
        stats.extend(values)
        assert stats.min - 1e-9 <= stats.mean <= stats.max + 1e-9

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50))
    def test_property_variance_non_negative(self, values):
        stats = OnlineStats()
        stats.extend(values)
        assert stats.variance >= -1e-12

    def test_repr_contains_fields(self):
        stats = OnlineStats()
        stats.add(1.0)
        assert "count=1" in repr(stats)


class TestEwma:
    def test_first_value_passthrough(self):
        out = ewma([3.0, 4.0, 5.0], alpha=0.5)
        assert out[0] == 3.0

    def test_alpha_one_copies_input(self):
        values = np.array([1.0, 7.0, -2.0])
        assert np.array_equal(ewma(values, alpha=1.0), values)

    def test_recurrence(self):
        out = ewma([1.0, 2.0, 3.0], alpha=0.1)
        assert out[1] == pytest.approx(0.1 * 2.0 + 0.9 * 1.0)
        assert out[2] == pytest.approx(0.1 * 3.0 + 0.9 * out[1])

    def test_constant_input_is_fixed_point(self):
        out = ewma(np.full(100, 4.2), alpha=0.01)
        assert np.allclose(out, 4.2)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ewma([1.0], alpha=0.0)
        with pytest.raises(ValueError):
            ewma([1.0], alpha=1.5)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            ewma(np.zeros((2, 2)), alpha=0.5)

    def test_empty_input(self):
        assert ewma([], alpha=0.5).size == 0

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40),
           st.floats(0.01, 1.0))
    def test_property_stays_within_range(self, values, alpha):
        out = ewma(values, alpha)
        assert out.min() >= min(values) - 1e-9
        assert out.max() <= max(values) + 1e-9


class TestPercentileSummary:
    def test_empty(self):
        summary = percentile_summary([])
        assert summary.count == 0

    def test_ordering(self, rng):
        summary = percentile_summary(rng.exponential(1.0, size=2000))
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.p999 <= summary.max
        assert summary.count == 2000
