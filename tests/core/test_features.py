"""Tests for feature specs and the normalisation pipeline."""

import numpy as np
import pytest

from repro.core.features import DELAY_COLUMN, FeaturePipeline, FeatureSpec


class TestFeatureSpec:
    def test_full_keeps_everything(self):
        spec = FeatureSpec.full()
        assert spec.continuous_columns == (0, 1, 2)
        assert spec.n_continuous == 3
        assert spec.use_receiver

    def test_without_size(self):
        spec = FeatureSpec.without_size()
        assert spec.continuous_columns == (0, 2)
        assert spec.delay_position == 1

    def test_without_delay(self):
        spec = FeatureSpec.without_delay()
        assert DELAY_COLUMN not in spec.continuous_columns
        assert spec.delay_position is None

    def test_without_receiver(self):
        spec = FeatureSpec.without_receiver()
        assert not spec.use_receiver
        assert spec.n_continuous == 3

    def test_delay_position_full(self):
        assert FeatureSpec.full().delay_position == 2

    def test_empty_spec_rejected(self):
        spec = FeatureSpec(use_time=False, use_size=False, use_delay=False)
        with pytest.raises(ValueError):
            __ = spec.continuous_columns


class TestPipeline:
    @pytest.fixture
    def pipeline(self, smoke_bundle):
        return FeaturePipeline().fit(smoke_bundle.train)

    def test_features_normalised(self, pipeline, smoke_bundle):
        scaled = pipeline.transform_features(smoke_bundle.train)
        flat = scaled.reshape(-1, 3)
        assert np.allclose(flat.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(flat.std(axis=0), 1.0, atol=1e-6)

    def test_delay_target_consistent_with_features(self, pipeline, smoke_bundle):
        scaled = pipeline.transform_features(smoke_bundle.train)
        targets = pipeline.transform_delay_target(smoke_bundle.train)
        # The target is the last packet's delay feature.
        assert np.allclose(scaled[:, -1, DELAY_COLUMN], targets)

    def test_delay_std_positive(self, pipeline):
        assert pipeline.delay_std > 0

    def test_delay_mse_conversion(self, pipeline):
        assert pipeline.delay_mse_to_seconds2(1.0) == pytest.approx(pipeline.delay_std**2)

    def test_mct_requires_fit(self, pipeline, smoke_bundle):
        complete = smoke_bundle.train.with_completed_messages_only()
        with pytest.raises(RuntimeError):
            pipeline.transform_mct_target(complete)

    def test_mct_transform_after_fit(self, pipeline, smoke_bundle):
        complete = smoke_bundle.train.with_completed_messages_only()
        pipeline.fit_mct(complete)
        targets = pipeline.transform_mct_target(complete)
        assert np.all(np.isfinite(targets))
        assert abs(targets.mean()) < 0.2

    def test_mct_transform_rejects_incomplete(self, pipeline, smoke_bundle):
        pipeline.fit_mct(smoke_bundle.train.with_completed_messages_only())
        bad = smoke_bundle.train
        if np.all(np.isfinite(bad.mct_target) & (bad.mct_target > 0)):
            bad = bad.subset(np.arange(len(bad)))
            bad.mct_target[0] = np.nan
        with pytest.raises(ValueError):
            pipeline.transform_mct_target(bad)

    def test_message_size_transform_finite(self, pipeline, smoke_bundle):
        sizes = pipeline.transform_message_size(smoke_bundle.train)
        assert np.all(np.isfinite(sizes))

    def test_same_pipeline_for_finetuning(self, pipeline, smoke_bundle, smoke_case1_bundle):
        """Statistics come from pre-training, not the fine-tuning data."""
        a = pipeline.transform_features(smoke_case1_bundle.train)
        assert a.shape[2] == 3
        # The case-1 data is scaled with *pre-training* statistics, so its
        # columns are not exactly standard-normal.
        flat = a.reshape(-1, 3)
        assert not np.allclose(flat.mean(axis=0), 0.0, atol=1e-12)
