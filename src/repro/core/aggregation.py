"""Multi-timescale packet aggregation (§3, "Learning packet aggregation").

Attention cost grows quadratically with sequence length, so the NTT
aggregates a long packet history into a short element sequence *before*
the encoder: recent packets stay raw, older packets are aggregated once,
the oldest twice.  Aggregation is **learned** — each level owns a linear
projection over the concatenated embeddings of its block, like ViT's
patch embedding.

The paper aggregates 1024 packets → 48 elements but does not publish
block sizes; :class:`AggregationSpec` is the general mechanism, with
solved defaults documented in DESIGN.md:

* paper scale: ``[(10, 81), (22, 9), (16, 1)]`` — 10·81 + 22·9 + 16·1
  = 1024 packets → 48 elements (aggregation factor 9, applied twice for
  the oldest level).
* scaled default: ``[(8, 49), (14, 7), (22, 1)]`` — 8·49 + 14·7 + 22·1
  = 512 packets → 44 elements (factor 7).

Ablations from Table 1:

* *no aggregation* — ``AggregationSpec.none(n)``: the last ``n`` packets,
  each its own element (little history).
* *fixed aggregation* — ``AggregationSpec.fixed(count, block)``: uniform
  blocks (long history, no packet-level detail); the paper used 48
  aggregates of 21 packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import fastpath
from repro.nn.layers import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor, _unbroadcast, concat

__all__ = ["AggregationLevel", "AggregationSpec", "Aggregator"]


@dataclass(frozen=True)
class AggregationLevel:
    """``count`` output elements, each aggregating ``block`` packets."""

    count: int
    block: int

    def __post_init__(self):
        if self.count <= 0 or self.block <= 0:
            raise ValueError(f"count and block must be positive, got {self}")

    @property
    def packets(self) -> int:
        return self.count * self.block


@dataclass(frozen=True)
class AggregationSpec:
    """Ordered aggregation levels, **oldest first**."""

    levels: tuple[AggregationLevel, ...]

    def __post_init__(self):
        if not self.levels:
            raise ValueError("AggregationSpec needs at least one level")
        blocks = [level.block for level in self.levels]
        if blocks != sorted(blocks, reverse=True):
            raise ValueError(
                "levels must be ordered oldest (largest block) to newest "
                f"(smallest block); got blocks {blocks}"
            )

    @property
    def seq_len(self) -> int:
        """Packets consumed from the end of each window."""
        return sum(level.packets for level in self.levels)

    @property
    def out_len(self) -> int:
        """Elements handed to the transformer encoder."""
        return sum(level.count for level in self.levels)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs) -> "AggregationSpec":
        """Build from ``[(count, block), ...]`` oldest-first."""
        return cls(tuple(AggregationLevel(count, block) for count, block in pairs))

    @classmethod
    def multi_timescale_512(cls) -> "AggregationSpec":
        """Scaled default: 512 packets → 44 elements."""
        return cls.from_pairs([(8, 49), (14, 7), (22, 1)])

    @classmethod
    def multi_timescale_paper(cls) -> "AggregationSpec":
        """Paper scale: 1024 packets → 48 elements."""
        return cls.from_pairs([(10, 81), (22, 9), (16, 1)])

    @classmethod
    def none(cls, n_packets: int = 44) -> "AggregationSpec":
        """Table 1 "no aggregation": the last ``n_packets`` raw packets."""
        return cls.from_pairs([(n_packets, 1)])

    @classmethod
    def fixed(cls, count: int = 42, block: int = 12) -> "AggregationSpec":
        """Table 1 "fixed aggregation": uniform ``count`` x ``block``.

        Defaults give 42·12 = 504 packets → 42 elements at the scaled
        window; the paper used 48 aggregates of 21 packets (1008).
        """
        return cls.from_pairs([(count, block)])

    @classmethod
    def fixed_paper(cls) -> "AggregationSpec":
        return cls.from_pairs([(48, 21)])

    def describe(self) -> str:
        inner = ", ".join(f"{lv.count}x{lv.block}" for lv in self.levels)
        return f"[{inner}] ({self.seq_len} pkts -> {self.out_len} elems)"


class Aggregator(Module):
    """Learned hierarchical aggregation.

    Input: embedded packets ``(batch, seq_len, d_emb)`` where ``seq_len``
    matches the spec.  Each level reshapes its slice into blocks and
    projects the concatenated block embedding to ``d_model``.  Output:
    ``(batch, out_len, d_model)``, oldest elements first.
    """

    def __init__(self, spec: AggregationSpec, d_emb: int, d_model: int, rng: np.random.Generator):
        super().__init__()
        self.spec = spec
        self.d_emb = d_emb
        self.d_model = d_model
        self.projections = ModuleList(
            Linear(level.block * d_emb, d_model, rng) for level in spec.levels
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.spec.seq_len or x.shape[2] != self.d_emb:
            raise ValueError(
                f"Aggregator expected (batch, {self.spec.seq_len}, {self.d_emb}), "
                f"got {x.shape}"
            )
        batch = x.shape[0]
        if fastpath.fused_ops_enabled():
            return self._fused_forward(x, batch)
        outputs = []
        offset = 0
        for level, projection in zip(self.spec.levels, self.projections):
            chunk = x[:, offset : offset + level.packets, :]
            offset += level.packets
            grouped = chunk.reshape(batch, level.count, level.block * self.d_emb)
            outputs.append(projection(grouped))
        return concat(outputs, axis=1)

    def _fused_forward(self, x: Tensor, batch: int) -> Tensor:
        """All levels — slice, block-reshape, project, concatenate — as
        one autograd node.

        Bit-identical to the composite graph: each level performs the
        same slice-view/reshape-copy/matmul sequence, and the backward
        writes each level's input gradient into one shared zero buffer —
        the levels cover disjoint packet ranges, so the single-buffer
        writes equal the composite engine's sum of per-level sparse
        gradients exactly.
        """
        levels = self.spec.levels
        saved = []
        outputs = []
        offset = 0
        for level, projection in zip(levels, self.projections):
            grouped = x.data[:, offset : offset + level.packets, :].reshape(
                batch, level.count, level.block * self.d_emb
            )
            out = grouped @ projection.weight.data
            if projection.bias is not None:
                np.add(out, projection.bias.data, out=out)
            outputs.append(out)
            saved.append((offset, level.packets, grouped, projection))
            offset += level.packets
        data = np.concatenate(outputs, axis=1)
        boundaries = np.cumsum([level.count for level in levels])[:-1]
        parents: list[Tensor] = [x]
        for projection in self.projections:
            parents.append(projection.weight)
            if projection.bias is not None:
                parents.append(projection.bias)

        def backward(grad):
            pieces = np.split(grad, boundaries, axis=1)
            gx = np.empty_like(x.data)
            contributions = [gx]
            for (offset, packets, grouped, projection), piece in zip(saved, pieces):
                gbias = None
                if projection.bias is not None:
                    gbias = _unbroadcast(piece, projection.bias.data.shape)
                ggrouped = fastpath.scratch(grouped.shape, grad.dtype)
                np.matmul(piece, np.swapaxes(projection.weight.data, -1, -2), out=ggrouped)
                # Per-item dgemm + sequential accumulation: numpy's
                # axis-0 reduce is sequential, so this equals the
                # composite batched-matmul-then-sum bit-for-bit while
                # keeping the (huge) per-item products cache-resident
                # instead of materialising a (batch, in, out) array.
                grouped_t = np.swapaxes(grouped, -1, -2)
                if batch == 0:
                    gweight = np.zeros(projection.weight.data.shape, dtype=grad.dtype)
                else:
                    gweight = np.matmul(grouped_t[0], piece[0])
                    item = fastpath.scratch(projection.weight.data.shape, grad.dtype, slot=1)
                    for index in range(1, batch):
                        np.matmul(grouped_t[index], piece[index], out=item)
                        np.add(gweight, item, out=gweight)
                gx[:, offset : offset + packets, :] = ggrouped.reshape(
                    batch, packets, self.d_emb
                )
                contributions.append(gweight)
                if gbias is not None:
                    contributions.append(gbias)
            return tuple(contributions)

        return Tensor._from_op(data, tuple(parents), backward)

    def __repr__(self) -> str:
        return f"Aggregator({self.spec.describe()}, d_model={self.d_model})"
