"""The stage registry: pipeline stages as pluggable plugins.

The campaign engine executes *stages* — traces, bundles, training,
evaluation — and, just like scenarios (:mod:`repro.api.registry`),
adding a new workload must not require editing core code.  A
:class:`Stage` declares everything the planner and the workers need:

* ``name`` — the stage's registry name (``repro sweep --stages <name>``);
* ``deps`` — names of upstream registered stages planned for the same
  spec (their results flow in through the ``inputs`` argument and, for
  heavy artifacts, through the shared artifact store);
* ``version`` — folded into the stage's cache keys, so bumping it after
  editing the stage's code invalidates exactly that stage's artifacts
  (and, through derived keys, its downstream dependents) instead of the
  global :data:`~repro.api.store.ARTIFACT_SCHEMA_VERSION` hammer;
* ``key_fn(spec, params)`` — the content-address of the stage's artifact
  (``None`` → the stage is not cacheable);
* ``run(experiment, inputs, params)`` — the pure stage body, returning
  ``(cache_hit, result_dict)`` where the result is a small JSON-able
  dictionary (it crosses process boundaries and lands in the campaign
  manifest).

Registered stages gain the whole ``repro.runtime`` machinery for free:
content-addressed caching, deduplicated planning,
``ProcessPoolExecutor`` fan-out, retries, campaign manifests and the
``repro sweep --stages`` CLI.

Version semantics
-----------------
``version == 0`` (the default, and the seed value for every built-in
stage) leaves the stage's keys exactly as ``key_fn`` computed them —
keys planned before the stage API existed stay byte-identical, so no
existing artifact is invalidated.  Any non-zero version is mixed into
the key via :func:`~repro.api.hashing.stable_hash`; bump it whenever the
stage's code changes behaviour.

Forgetting the bump is the silent failure mode — old artifacts keep
being served under unchanged keys — so it is enforced statically: the
committed ``stage-fingerprints.json`` pins a normalized-AST fingerprint
of every registered stage's run function plus its transitive in-repo
callee closure, and ``repro lint --fingerprints`` (also folded into
plain ``repro lint`` and tier-1) fails when a stage's code drifts while
its ``version`` stands still.  After a deliberate change, bump
``version`` if behaviour changed and re-pin with
``repro lint --fingerprints-update`` (see :mod:`repro.lint.fingerprint`
for the full decision guide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.api.hashing import stable_hash

__all__ = [
    "Stage",
    "StageRegistry",
    "STAGE_REGISTRY",
    "register_stage",
    "versioned_key",
    "inputs_by_stage",
]


@dataclass
class Stage:
    """One registered pipeline stage (see the module docstring).

    ``default`` marks membership in the standard
    traces→bundle→pretrain→finetune→evaluate pipeline; ``sweepable``
    stages may be planned directly by ``plan_campaign`` /
    ``repro sweep --stages`` (table-only stages such as ``scratch``
    and ``baselines`` are not).  ``plan_fn(plan, spec, params)``
    optionally replaces the default planner for stages whose task graph
    needs bespoke construction; without it the planner recursively plans
    ``deps`` and adds one task keyed by :meth:`task_key`.  ``module``
    records where ``run`` was defined so worker processes can import it
    before dispatch.
    """

    name: str
    run: Callable
    deps: tuple[str, ...] = ()
    version: int = 0
    kind: str | None = None
    key_fn: Callable | None = None
    description: str = ""
    default: bool = False
    sweepable: bool = True
    plan_fn: Callable | None = None
    module: str = ""

    def versioned_key(self, base: str | None) -> str | None:
        """Mix :attr:`version` into a base content key.

        Version 0 is the identity, keeping every pre-stage-API key
        byte-identical (see the module docstring).
        """
        if base is None or not self.version:
            return base
        return stable_hash(
            {"stage": self.name, "stage_version": self.version, "base": base}
        )

    def task_key(self, spec, params: dict) -> str | None:
        """The content-address of this stage's artifact for one spec."""
        if self.key_fn is None:
            return None
        return self.versioned_key(self.key_fn(spec, params))


class StageRegistry:
    """Name → :class:`Stage` mapping with decorator registration."""

    def __init__(self):
        self._entries: dict[str, Stage] = {}

    def register(
        self,
        name: str,
        *,
        deps: tuple[str, ...] = (),
        version: int = 0,
        kind: str | None = None,
        key_fn: Callable | None = None,
        description: str = "",
        default: bool = False,
        sweepable: bool = True,
        plan_fn: Callable | None = None,
        replace_existing: bool = False,
    ):
        """Decorator: register ``fn(experiment, inputs, params)``."""

        def decorator(fn: Callable) -> Callable:
            if name in self._entries and not replace_existing:
                raise ValueError(f"stage {name!r} is already registered")
            self._entries[name] = Stage(
                name=name,
                run=fn,
                deps=tuple(deps),
                version=version,
                kind=kind,
                key_fn=key_fn,
                description=description,
                default=default,
                sweepable=sweepable,
                plan_fn=plan_fn,
                module=getattr(fn, "__module__", "") or "",
            )
            return fn

        return decorator

    def get(self, name: str) -> Stage:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown stage {name!r}; registered stages: {self.names()}"
            ) from None

    def find(self, name: str) -> Stage | None:
        """Like :meth:`get` but ``None`` for unregistered names."""
        return self._entries.get(name)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[Stage]:
        """Stages in registration order (dependency-friendly)."""
        return list(self._entries.values())

    def default_pipeline(self) -> tuple[str, ...]:
        """The standard pipeline: ``default`` stages, registration order."""
        return tuple(stage.name for stage in self._entries.values() if stage.default)

    def sweep_stages(self) -> tuple[str, ...]:
        """Every stage plannable by ``plan_campaign`` — the default
        pipeline first, then the other sweepable stages, both in
        registration order."""
        rest = tuple(
            stage.name
            for stage in self._entries.values()
            if stage.sweepable and not stage.default
        )
        return self.default_pipeline() + rest

    def all_stages(self) -> tuple[str, ...]:
        """Every registered stage name, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.all_stages())


#: The default (module-level) registry used by the planner, the campaign
#: workers and the CLI.  Built-in stages register on import of
#: :mod:`repro.runtime.stages`; extensions on import of
#: :mod:`repro.extensions` (both triggered by importing ``repro.api``).
STAGE_REGISTRY = StageRegistry()


def register_stage(name: str, **options):
    """Register a stage implementation in the default registry.

    Usage::

        from repro.api.hashing import stable_hash
        from repro.api.stages import register_stage

        def _digest_key(spec, params):
            return stable_hash({"artifact": "trace_digest",
                                "scenario": spec.scenario_config(),
                                "n_runs": spec.to_scale().n_runs})

        @register_stage("trace_digest", deps=("traces",), version=1,
                        kind="evaluations", key_fn=_digest_key,
                        description="per-run trace statistics")
        def run_trace_digest(experiment, inputs, params):
            ...
            return False, {"packets": ...}

    See :class:`StageRegistry.register` for the keyword options.
    """
    return STAGE_REGISTRY.register(name, **options)


def versioned_key(name: str, base: str | None) -> str | None:
    """Apply a registered stage's version to a base key.

    Callers are the interactive key paths (``ExperimentContext`` /
    ``Experiment``), which must stay in lockstep with planned task keys:
    if ``name`` is not registered yet (possible only in exotic import
    orders that bypass ``repro.api``), the built-in stage definitions
    are imported first — silently passing a built-in's key through would
    serve stale artifacts after a version bump.  Names that remain
    unregistered afterwards (uninstalled custom stages) pass the key
    through unchanged, matching their version-0 planning behaviour.
    """
    stage = STAGE_REGISTRY.find(name)
    if stage is None:
        # Deliberately lazy: at call time the import is cycle-free, and
        # pure `repro.api` users never pay for `repro.runtime` otherwise.
        import repro.runtime.stages  # noqa: F401 — registers built-ins

        stage = STAGE_REGISTRY.find(name)
    return base if stage is None else stage.versioned_key(base)


def inputs_by_stage(inputs: dict | None) -> dict:
    """Regroup a task's ``inputs`` (keyed by dependency task id, e.g.
    ``"traces:8d9892dc3ea5"``) by stage name.

    Stages with several dependencies of the same stage get a list; the
    common single-dependency case gets the bare result dictionary.
    """
    grouped: dict[str, list] = {}
    for task_id, result in (inputs or {}).items():
        stage_name = task_id.split(":", 1)[0]
        grouped.setdefault(stage_name, []).append(result)
    return {
        name: results[0] if len(results) == 1 else results
        for name, results in grouped.items()
    }
