"""Tests for the metrics registry: instruments, snapshots, merge algebra."""

import threading

import pytest

import repro.obs as obs
from repro.obs import (
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    prometheus_text,
    subtract,
)


class TestInstruments:
    def test_same_name_and_labels_resolve_to_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", route="/predict")
        second = registry.counter("requests_total", route="/predict")
        assert first is second
        first.inc()
        assert second.value == 1

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", x=1, y=2)
        b = registry.gauge("g", y=2, x=1)
        assert a is b

    def test_different_labels_are_different_series(self):
        registry = MetricsRegistry()
        registry.counter("c", k="a").inc()
        registry.counter("c", k="b").inc(3)
        counters = registry.snapshot()["counters"]
        assert counters["c{k=a}"]["value"] == 1
        assert counters["c{k=b}"]["value"] == 3

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_is_last_write(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.set(2.0)
        gauge.inc(1.0)
        assert gauge.value == 3.0

    def test_histogram_edges_are_inclusive_with_overflow(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 2.0, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1, 1]  # 1.0 lands in the <=1 bin
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.5)

    def test_histogram_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestSnapshots:
    def test_snapshot_is_json_ready_and_detached(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        registry.counter("c").inc()
        assert snapshot["counters"]["c"]["value"] == 1  # detached copy

    def test_events_carry_fields_and_timestamp(self):
        registry = MetricsRegistry(clock=lambda: 123.0)
        registry.record_event("downgraded", reason="no store")
        (event,) = registry.snapshot()["events"]
        assert event == {"event": "downgraded", "time_unix": 123.0, "reason": "no store"}

    def test_merge_snapshots_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, n in ((a, 2), (b, 3)):
            registry.counter("c").inc(n)
            registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
            registry.gauge("g").set(n)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["c"]["value"] == 5
        assert merged["histograms"]["h"]["counts"] == [2, 0, 0]
        assert merged["gauges"]["g"]["value"] == 3  # last write wins

    def test_merge_snapshots_ignores_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        merged = merge_snapshots({}, registry.snapshot(), empty_snapshot())
        assert merged["counters"]["c"]["value"] == 1

    def test_subtract_yields_the_delta(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.record_event("before")
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.counter("new").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.record_event("after")
        delta = subtract(registry.snapshot(), before)
        assert delta["counters"]["c"]["value"] == 3
        assert delta["counters"]["new"]["value"] == 1
        assert delta["histograms"]["h"]["count"] == 1
        assert [event["event"] for event in delta["events"]] == ["after"]

    def test_subtract_drops_zero_deltas(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        before = registry.snapshot()
        delta = subtract(registry.snapshot(), before)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_registry_merge_folds_external_snapshot(self):
        worker = MetricsRegistry()
        worker.counter("c", stage="traces").inc(4)
        worker.record_event("seen")
        parent = MetricsRegistry()
        parent.counter("c", stage="traces").inc(1)
        parent.merge(worker.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["c{stage=traces}"]["value"] == 5
        assert [event["event"] for event in snapshot["events"]] == ["seen"]


class TestPrometheusText:
    def test_counters_and_gauges_render_with_types(self):
        registry = MetricsRegistry()
        registry.counter("netsim.runs_total", scenario="pretrain").inc(2)
        registry.gauge("nn.train.loss").set(0.25)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE netsim_runs_total counter" in text
        assert 'netsim_runs_total{scenario="pretrain"} 2' in text
        assert "# TYPE nn_train_loss gauge" in text
        assert "nn_train_loss 0.25" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        text = prometheus_text(registry.snapshot())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_sum 11" in text
        assert "h_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c').inc()
        text = prometheus_text(registry.snapshot())
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text(empty_snapshot()) == ""


class TestGating:
    def test_disabled_accessors_are_noops(self):
        with obs.scope(False):
            assert not obs.enabled()
            registry = obs.metrics()
            registry.counter("c").inc()
            assert registry.snapshot() == empty_snapshot()
            assert obs.record_event("e") == {}
            with obs.tracer().span("s") as span:
                span.set(k=1)
            assert obs.tracer().finished() == []

    def test_enabled_accessors_are_live(self):
        with obs.scope(True):
            assert obs.metrics() is obs.get_registry()

    def test_record_event_lands_in_registry_and_tracer(self):
        obs.reset()
        with obs.scope(True):
            obs.record_event("something", detail=1)
        events = obs.get_registry().snapshot()["events"]
        assert events and events[-1]["event"] == "something"
        obs.reset()

    def test_capture_tracer_scopes_spans_to_the_thread(self):
        obs.reset()
        with obs.scope(True):
            with obs.capture_tracer() as captured:
                with obs.tracer().span("inner"):
                    pass
                assert [span["name"] for span in captured.finished()] == ["inner"]
            # After the capture, spans go back to the global tracer.
            assert obs.get_tracer() is not captured
        obs.reset()
