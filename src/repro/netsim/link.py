"""Point-to-point links.

A full-duplex link is a pair of :class:`Channel` objects.  Each channel
owns an egress queue and a transmitter: the head-of-line packet occupies
the transmitter for its serialization delay, then propagates for the
channel's propagation delay before being delivered to the peer node.

On the fast path the transmitter *pre-books* departures: FIFO service
(drop-tail, RED) makes every accepted packet's transmission slot known
at arrival time, so the channel books ``start = busy_until``,
``finish = start + tx`` and schedules the single delivery event at
``finish + propagation`` immediately — one event per packet instead of
the reference stack's per-packet "serialization finished" plus
"propagation finished" pair.  Queue occupancy is kept honest by lazily
retiring bookings whose transmission has started (on every send, and
via :meth:`Channel.sync_queue` for samplers).  All timestamps use the
exact float expressions the chained events produced, so traces are
bit-identical.  Delivery events carry their serialization-finish
instant as the calendar's allocation field, so deliveries tied at
exactly equal float timestamps across channels still execute in the
reference stack's order (finish order).

**Exact-tie boundary.**  When any *other* event (an application
callback, a TCP timer, a monitor sample, a lazy queue retirement)
coincides with a serialization-finish instant at exactly the same
float, its order relative to that finish may differ from the reference
stack: the reference resolves such ties through sequence numbers
allocated inside the very per-packet events this fast path eliminates,
so they cannot be reproduced without reintroducing those events.  The
divergence is only reachable with hand-picked rational rates/delays
whose float sums collide exactly — every registered scenario draws
start times and arrivals from continuous distributions and is
golden-tested bit-identical (`tests/netsim/test_golden_equivalence.py`).
Non-FIFO disciplines (e.g. strict priority) cannot be pre-booked —
their departure order depends on future arrivals — and transparently
fall back to the eventful reference transmitter.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING

from repro.netsim import reference
from repro.netsim.core import Simulator
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.netsim.units import BYTE, serialization_delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.netsim.node import Node

__all__ = ["Channel", "Link"]


class Channel:
    """One direction of a link: queue + transmitter + propagation."""

    __slots__ = (
        "sim",
        "dst_node",
        "rate_bps",
        "propagation_delay",
        "queue",
        "name",
        "bytes_sent",
        "packets_sent",
        "busy_time",
        "busy_until",
        "_fused",
        "_plain",
        "_starts",
        "_tx_size",
        "_dst_receive",
        "_legacy_busy",
    )

    def __init__(
        self,
        sim: Simulator,
        dst_node: "Node",
        rate_bps: float,
        propagation_delay: float,
        queue: DropTailQueue,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError(f"propagation delay must be non-negative, got {propagation_delay}")
        self.sim = sim
        self.dst_node = dst_node
        self.rate_bps = float(rate_bps)
        self.propagation_delay = float(propagation_delay)
        self.queue = queue
        self.name = name
        self.bytes_sent = 0
        self.packets_sent = 0
        self.busy_time = 0.0
        self.busy_until = 0.0
        # Pre-booking requires FIFO service order and the known
        # drop-tail queue layout (for lazy retirement and in-flight
        # accounting), plus the fast-path simulator; anything else —
        # strict priority, shapers, custom disciplines — keeps the
        # reference per-packet event pattern.
        self._fused = (
            reference.fast_path_enabled()
            and isinstance(queue, DropTailQueue)
            and getattr(queue, "fifo_service", False)
            and isinstance(sim, Simulator)
        )
        # Exactly a plain drop-tail queue (not RED or another subclass):
        # its enqueue/dequeue bookkeeping is inlined on the fast path.
        self._plain = self._fused and type(queue) is DropTailQueue
        # Cached bound method: the delivery callback of every packet on
        # this channel, bound once instead of per packet.
        self._dst_receive = dst_node.receive
        #: Booked transmission start times of packets still in the queue.
        self._starts = deque()
        #: Size of the transmission in progress (valid while
        #: ``now < busy_until``), for completed-bytes accounting.
        self._tx_size = 0
        self._legacy_busy = False
        # Thread the simulation-wide counters into the queue so drops
        # aggregate without any per-packet monitor callback.
        queue.sim_stats = sim.stats

    @property
    def busy(self) -> bool:
        """Whether the transmitter currently holds a packet."""
        if self._fused:
            return self.sim.now < self.busy_until
        return self._legacy_busy

    def sync_queue(self) -> None:
        """Retire booked departures whose transmission has started.

        The fast path dequeues lazily; samplers reading
        ``channel.queue.occupancy`` directly should call this first so
        occupancy reflects the current simulation time.
        """
        starts = self._starts
        if starts and starts[0] <= self.sim.now:
            now = self.sim.now
            queue = self.queue
            popleft = starts.popleft
            dequeue = queue.dequeue
            while starts and starts[0] <= now:
                popleft()
                packet = dequeue()
                if packet is not None:
                    self._tx_size = packet.size

    def completed_bytes_now(self) -> int:
        """Bytes whose transmission has *finished* by the current time.

        This matches the instant the reference stack increments
        ``bytes_sent`` (its serialization-finished event), so samplers
        like :class:`~repro.netsim.monitors.ThroughputMonitor` observe
        the same windows on either stack — up to the module-level
        exact-tie boundary: a sample landing on exactly a
        serialization-finish float counts that packet as finished here,
        while the reference's ordering at such a tie depends on event
        sequence numbers.  ``bytes_sent`` itself counts *bookings*,
        which run ahead of the wire by up to one queue's worth; the
        in-flight remainder is reconstructed from the queue contents,
        costing O(occupancy) per sample and nothing per packet.
        """
        if not self._fused:
            return self.bytes_sent
        self.sync_queue()
        pending = 0
        for packet in self.queue._items:  # fused implies DropTailQueue
            pending += packet.size
        if self.sim.now < self.busy_until:
            pending += self._tx_size
        return self.bytes_sent - pending

    def send(self, packet: Packet) -> bool:
        """Hand ``packet`` to this channel.

        If the transmitter is idle the packet starts serializing
        immediately; otherwise it is enqueued (and possibly dropped).
        Returns False when the packet was dropped at the queue.
        """
        if not self._fused:
            if self._legacy_busy:
                return self.queue.enqueue(packet)
            self._start_transmission(packet)
            return True
        sim = self.sim
        now = sim._now
        queue = self.queue
        starts = self._starts
        # Retire bookings whose transmission has started, so the
        # occupancy seen by the drop policy matches the reference.
        if self._plain:
            items = queue._items
            queue_stats = queue.stats
            while starts and starts[0] <= now:
                starts.popleft()
                queue_stats.dequeued += 1
                self._tx_size = items.popleft().size
        else:
            while starts and starts[0] <= now:
                starts.popleft()
                started = queue.dequeue()
                if started is not None:
                    self._tx_size = started.size
        size = packet.size
        tx_delay = size * BYTE / self.rate_bps
        busy_until = self.busy_until
        if starts or now < busy_until:
            # Transmitter busy: the packet waits (or drops), and its
            # departure is booked right behind the last one.
            if self._plain:
                # Inlined DropTailQueue.enqueue — once per queued packet.
                items = queue._items
                occupancy = len(items) + 1
                if occupancy > queue.capacity:
                    queue._count_drop(packet)
                    return False
                items.append(packet)
                queue_stats = queue.stats
                queue_stats.enqueued += 1
                queue_stats.bytes_enqueued += size
                if occupancy > queue_stats.max_occupancy:
                    queue_stats.max_occupancy = occupancy
            elif not queue.enqueue(packet):
                return False
            finish = busy_until + tx_delay
            starts.append(busy_until)
        else:
            finish = now + tx_delay
            self._tx_size = size
        self.busy_until = finish
        self.busy_time += tx_delay
        self.bytes_sent += size
        self.packets_sent += 1
        # Inlined sim.post_at(finish + prop, dst.receive, (packet,)):
        # this runs once per packet per hop, so the delivery event is
        # built and placed into the calendar without a method call.
        # The allocation instant is `finish` — where the reference
        # stack's serialization-finished event would have scheduled the
        # delivery — so exact-time delivery ties across channels keep
        # the reference order.
        entry = (
            finish + self.propagation_delay,
            0,
            finish,
            next(sim._seq),
            self._dst_receive,
            (packet,),
            None,
        )
        tail = sim._tail
        if not tail or entry > tail[-1]:
            tail.append(entry)
        elif entry < tail[0]:
            tail.appendleft(entry)
        else:
            heappush(sim._heap, entry)
        return True

    def send_burst(self, packets) -> int:
        """Send an ordered burst of packets; returns how many were accepted.

        Semantically identical to calling :meth:`send` per packet (same
        booking order, same drop decisions, same delivery timestamps) —
        the burst variant exists so message sources pay the hot-path
        setup once per message instead of once per MTU packet.
        """
        if not self._fused:
            accepted = 0
            for packet in packets:
                if self.send(packet):
                    accepted += 1
            return accepted
        sim = self.sim
        now = sim._now
        queue = self.queue
        starts = self._starts
        plain = self._plain
        items = queue._items if plain else None
        queue_stats = queue.stats
        if plain:
            while starts and starts[0] <= now:
                starts.popleft()
                queue_stats.dequeued += 1
                self._tx_size = items.popleft().size
        else:
            while starts and starts[0] <= now:
                starts.popleft()
                started = queue.dequeue()
                if started is not None:
                    self._tx_size = started.size
        rate_bps = self.rate_bps
        prop = self.propagation_delay
        receive = self._dst_receive
        seq_counter = sim._seq
        tail = sim._tail
        heap = sim._heap
        busy_until = self.busy_until
        busy_time = 0.0
        bytes_accepted = 0
        accepted = 0
        for packet in packets:
            size = packet.size
            tx_delay = size * BYTE / rate_bps
            if starts or now < busy_until:
                if plain:
                    occupancy = len(items) + 1
                    if occupancy > queue.capacity:
                        queue._count_drop(packet)
                        continue
                    items.append(packet)
                    queue_stats.enqueued += 1
                    queue_stats.bytes_enqueued += size
                    if occupancy > queue_stats.max_occupancy:
                        queue_stats.max_occupancy = occupancy
                elif not queue.enqueue(packet):
                    continue
                finish = busy_until + tx_delay
                starts.append(busy_until)
            else:
                finish = now + tx_delay
                self._tx_size = size
            busy_until = finish
            busy_time += tx_delay
            bytes_accepted += size
            accepted += 1
            entry = (finish + prop, 0, finish, next(seq_counter), receive, (packet,), None)
            if not tail or entry > tail[-1]:
                tail.append(entry)
            elif entry < tail[0]:
                tail.appendleft(entry)
            else:
                heappush(heap, entry)
        self.busy_until = busy_until
        self.busy_time += busy_time
        self.bytes_sent += bytes_accepted
        self.packets_sent += accepted
        return accepted

    # -- reference (unfused) transmitter: legacy_path() and non-FIFO queues ------

    def _start_transmission(self, packet: Packet) -> None:
        self._legacy_busy = True
        tx_delay = serialization_delay(packet.size, self.rate_bps)
        self.busy_time += tx_delay
        self.busy_until = self.sim.now + tx_delay
        self.sim.schedule(tx_delay, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self.sim.schedule(self.propagation_delay, self.dst_node.receive, packet)
        next_packet = self.queue.dequeue()
        if next_packet is None:
            self._legacy_busy = False
        else:
            self._start_transmission(next_packet)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds spent transmitting.

        Matches the reference accounting (serialization time counted
        when a transmission *starts*): on the fast path ``busy_time``
        accrues at booking, so the still-queued packets' serialization
        time is backed out before reporting.
        """
        if elapsed <= 0:
            return 0.0
        busy_time = self.busy_time
        if self._fused:
            self.sync_queue()
            rate_bps = self.rate_bps
            for packet in self.queue._items:  # fused implies DropTailQueue
                busy_time -= packet.size * BYTE / rate_bps
        return min(1.0, busy_time / elapsed)

    def __repr__(self) -> str:
        return f"Channel({self.name or hex(id(self))}, rate={self.rate_bps:.3g}bps)"


class Link:
    """A full-duplex link between two nodes.

    Queue capacity applies independently per direction, as in ns-3's
    point-to-point net devices.
    """

    __slots__ = ("node_a", "node_b", "forward", "backward")

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        rate_bps: float,
        propagation_delay: float,
        queue_packets: int,
        queue_factory=None,
    ):
        make_queue = queue_factory if queue_factory is not None else DropTailQueue
        self.node_a = node_a
        self.node_b = node_b
        self.forward = Channel(
            sim,
            node_b,
            rate_bps,
            propagation_delay,
            make_queue(queue_packets),
            name=f"{node_a.name}->{node_b.name}",
        )
        self.backward = Channel(
            sim,
            node_a,
            rate_bps,
            propagation_delay,
            make_queue(queue_packets),
            name=f"{node_b.name}->{node_a.name}",
        )

    def channel_from(self, node: "Node") -> Channel:
        """The egress channel as seen from ``node``."""
        if node is self.node_a:
            return self.forward
        if node is self.node_b:
            return self.backward
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def other_end(self, node: "Node") -> "Node":
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node!r} is not an endpoint of this link")
