"""The event-loop profiler: bit-identical execution, useful accounting."""

import numpy as np
import pytest

from repro.netsim.core import SimulationError, Simulator
from repro.netsim.profiler import EventLoopProfiler
from repro.netsim.scenarios import ScenarioConfig, build_scenario
from repro.obs.metrics import MetricsRegistry

TRACE_COLUMNS = (
    "send_time", "recv_time", "size", "receiver_id",
    "flow_id", "message_id", "message_size", "is_message_end",
)


class TestLoopEquivalence:
    def test_profiled_scenario_trace_is_bit_identical(self):
        config = ScenarioConfig.smoke(seed=3)
        plain = build_scenario(config).run()
        handle = build_scenario(config)
        profiler = EventLoopProfiler()
        handle.sim.attach_profiler(profiler)
        profiled = handle.run()
        assert len(plain) == len(profiled)
        for column in TRACE_COLUMNS:
            assert np.array_equal(
                getattr(plain, column), getattr(profiled, column)
            ), column
        assert profiler.events_total > 0

    def test_profiled_run_honours_until_and_max_events(self):
        def tick(sim, i):
            if i < 100:
                sim.post(0.01, tick, (sim, i + 1))

        plain, profiled = Simulator(), Simulator()
        plain.schedule(0.0, tick, plain, 0)
        profiled.schedule(0.0, tick, profiled, 0)
        profiled.attach_profiler(EventLoopProfiler())
        plain.run(max_events=10)
        profiled.run(max_events=10)
        assert plain.events_processed == profiled.events_processed == 10
        assert plain.now == profiled.now
        plain.run(until=5.0)
        profiled.run(until=5.0)
        assert plain.now == profiled.now == 5.0
        assert plain.events_processed == profiled.events_processed

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, fired.append, "keep")
        cancel = sim.schedule(0.5, fired.append, "cancel")
        cancel.cancel()
        profiler = EventLoopProfiler()
        sim.attach_profiler(profiler)
        sim.run()
        assert fired == ["keep"]
        assert keep.time == 1.0
        assert profiler.events_total == 1

    def test_reentrant_run_still_rejected(self):
        sim = Simulator()
        sim.attach_profiler(EventLoopProfiler())
        sim.schedule(0.0, sim.run)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()

    def test_detach_restores_the_fast_loop(self):
        sim = Simulator()
        profiler = EventLoopProfiler()
        sim.attach_profiler(profiler)
        sim.schedule(0.0, lambda: None)
        sim.run()
        sim.attach_profiler(None)
        sim.schedule(0.1, lambda: None)
        sim.run()
        assert profiler.events_total == 1  # second run not profiled


class TestAccounting:
    def _profiled_sim(self, events: int = 50):
        sim = Simulator()
        profiler = EventLoopProfiler(sample_every=4)
        sim.attach_profiler(profiler)

        def tick(i):
            if i < events - 1:
                sim.post(0.01, tick, (i + 1,))

        sim.schedule(0.0, tick, 0)
        sim.run()
        return profiler

    def test_report_totals_and_handlers(self):
        profiler = self._profiled_sim(50)
        report = profiler.report()
        assert report["events_total"] == 50
        assert report["cpu_s"] > 0
        assert report["events_per_s"] > 0
        (handler,) = report["handlers"].values()
        assert handler["count"] == 50
        assert handler["cpu_s"] >= 0

    def test_queue_depth_sampling(self):
        profiler = self._profiled_sim(50)
        depth = profiler.report()["queue_depth"]
        assert depth["sample_every"] == 4
        assert depth["samples"] == 50 // 4
        assert depth["max"] >= depth["mean"] >= 0

    def test_publish_into_a_registry(self):
        profiler = self._profiled_sim(10)
        registry = MetricsRegistry()
        profiler.publish(registry)
        snapshot = registry.snapshot()
        totals = [
            entry
            for entry in snapshot["counters"].values()
            if entry["name"] == "netsim.profiler.events_total"
        ]
        assert sum(entry["value"] for entry in totals) == 10
        assert "netsim.profiler.queue_depth_max" in snapshot["gauges"]

    def test_format_report_is_printable(self):
        text = self._profiled_sim(20).format_report()
        assert "event loop: 20 events" in text
        assert "calendar depth" in text

    def test_sample_every_validated(self):
        with pytest.raises(ValueError, match="sample_every"):
            EventLoopProfiler(sample_every=0)
