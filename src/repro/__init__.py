"""Reproduction of *A New Hope for Network Model Generalization* (HotNets '22).

The package provides three layers:

* :mod:`repro.netsim` — a packet-level discrete-event network simulator
  (the ns-3 substitute) used to generate the paper's datasets (Fig. 4).
* :mod:`repro.nn` — a numpy-based autograd engine with the transformer
  building blocks (the PyTorch substitute).
* :mod:`repro.core` — the Network Traffic Transformer itself: feature
  extraction, multi-timescale aggregation, pre-training on masked delay
  prediction, fine-tuning, baselines and evaluation.

Quickstart::

    from repro.core.pipeline import ExperimentConfig, run_pretraining
    config = ExperimentConfig.small()
    result = run_pretraining(config)
    print(result.test_mse)
"""

from repro.version import __version__

__all__ = ["__version__"]
