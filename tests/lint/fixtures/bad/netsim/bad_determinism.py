"""Known-bad determinism fixture: every marked line must be a finding."""

import random

import numpy as np
import time
from datetime import datetime


def jitter():
    np.random.seed(7)
    draw = np.random.random()
    noise = random.gauss(0.0, 1.0)
    return draw + noise


def stamp():
    started = time.time()
    label = datetime.now().isoformat()
    return started, label


def cache_key(items, stable_hash):
    return stable_hash(set(items))
