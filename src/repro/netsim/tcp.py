"""Simplified TCP Reno, used for the paper's cross-traffic.

The fine-tuning datasets add "20 Mbps of TCP flows" (§4) whose packets
are *not* traced — they only perturb the queue.  What matters for the
experiments is that cross-traffic reacts to congestion (sawtooth cwnd,
loss-driven backoff), so we implement the classic Reno loop:

* slow start and congestion avoidance (AIMD),
* fast retransmit on three duplicate ACKs,
* retransmission timeout with exponential backoff and Karn's rule,
* RTT estimation per RFC 6298.

Sequence numbers count segments, not bytes; every segment is MSS-sized.
This halves the bookkeeping without changing the congestion dynamics.
"""

from __future__ import annotations

from repro.netsim.core import Event, Simulator
from repro.netsim.node import Node
from repro.netsim.packet import Packet, PacketKind

__all__ = ["TcpSender", "TcpReceiver", "install_tcp_flow"]

#: Size of an ACK on the wire, bytes.
ACK_BYTES = 40

#: Initial retransmission timeout (RFC 6298 suggests 1 s; we use a tighter
#: value because simulated RTTs are milliseconds).
INITIAL_RTO = 0.2

MIN_RTO = 0.05
MAX_RTO = 10.0


class TcpReceiver:
    """Cumulative-ACK receiver with an out-of-order buffer."""

    def __init__(self, sim: Simulator, node: Node, flow_id: int):
        self.sim = sim
        self.node = node
        self.flow_id = flow_id
        self.expected_seq = 0
        self.out_of_order: set[int] = set()
        self.packets_received = 0
        node.register_flow(flow_id, self.on_packet)

    def on_packet(self, packet: Packet) -> None:
        """Handle a data segment: advance the cumulative ACK and reply."""
        if packet.kind != PacketKind.DATA:
            return
        self.packets_received += 1
        if packet.seq == self.expected_seq:
            self.expected_seq += 1
            while self.expected_seq in self.out_of_order:
                self.out_of_order.discard(self.expected_seq)
                self.expected_seq += 1
        elif packet.seq > self.expected_seq:
            self.out_of_order.add(packet.seq)
        ack = Packet(
            src=self.node.node_id,
            dst=packet.src,
            size=ACK_BYTES,
            flow_id=self.flow_id,
            kind=PacketKind.ACK,
            ack_for=self.expected_seq,
            traced=False,
        )
        self.node.send(ack)


class TcpSender:
    """Reno sender with an unbounded (or bounded) amount of data to ship.

    Args:
        sim: event loop.
        node: sending host; the sender registers itself for ACK delivery.
        dst: destination host (must run a :class:`TcpReceiver` for the
            same flow id).
        flow_id: flow identifier.
        mss_bytes: segment size on the wire.
        total_segments: stop after this many segments (None = unlimited,
            i.e. a long-lived "elephant" cross-traffic flow).
        start_time: when to begin transmitting.
        initial_ssthresh: slow-start threshold in segments.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        dst: Node,
        flow_id: int,
        mss_bytes: int = 1500,
        total_segments: int | None = None,
        start_time: float = 0.0,
        initial_ssthresh: float = 64.0,
        max_cwnd: float = 1024.0,
    ):
        self.sim = sim
        self.node = node
        self.dst = dst
        self.flow_id = flow_id
        self.mss_bytes = int(mss_bytes)
        self.total_segments = total_segments
        self.start_time = float(start_time)
        # Congestion state (in segments).
        self.cwnd = 2.0
        self.ssthresh = float(initial_ssthresh)
        self.max_cwnd = float(max_cwnd)
        # Sequence state.
        self.next_seq = 0
        self.unacked = 0  # oldest unacknowledged segment
        self.dup_acks = 0
        self.in_fast_recovery = False
        self.recovery_point = 0
        # RTT estimation (RFC 6298).
        self.srtt: float | None = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._timer: Event | None = None
        # Statistics.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        node.register_flow(flow_id, self.on_ack)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Schedule the first transmission burst."""
        self.sim.schedule_at(max(self.start_time, self.sim.now), self._try_send)

    @property
    def flight_size(self) -> int:
        """Segments currently in flight."""
        return self.next_seq - self.unacked

    @property
    def done(self) -> bool:
        """True when a bounded transfer has been fully acknowledged."""
        return self.total_segments is not None and self.unacked >= self.total_segments

    # -- sending -----------------------------------------------------------

    def _try_send(self) -> None:
        """Send as many new segments as the window allows."""
        while self.flight_size < int(self.cwnd):
            if self.total_segments is not None and self.next_seq >= self.total_segments:
                break
            self._transmit(self.next_seq, is_retransmission=False)
            self.next_seq += 1
        self._arm_timer()

    def _transmit(self, seq: int, is_retransmission: bool) -> None:
        packet = Packet(
            src=self.node.node_id,
            dst=self.dst.node_id,
            size=self.mss_bytes,
            flow_id=self.flow_id,
            seq=seq,
            kind=PacketKind.DATA,
            traced=False,
        )
        self.node.send(packet)
        self.segments_sent += 1
        if is_retransmission:
            self.retransmissions += 1
            self._retransmitted.add(seq)
            self._send_times.pop(seq, None)  # Karn: no RTT sample from retransmits
        else:
            self._send_times[seq] = self.sim.now

    # -- receiving ACKs ------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        """Process a (possibly duplicate) cumulative ACK."""
        if packet.kind != PacketKind.ACK:
            return
        ack = packet.ack_for
        if ack > self.unacked:
            self._on_new_ack(ack)
        elif ack == self.unacked and self.flight_size > 0:
            self._on_duplicate_ack()
        self._try_send()

    def _on_new_ack(self, ack: int) -> None:
        newly_acked = ack - self.unacked
        self._sample_rtt(ack)
        for seq in range(self.unacked, ack):
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self.unacked = ack
        self.dup_acks = 0
        if self.in_fast_recovery:
            if ack >= self.recovery_point:
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
        elif self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, self.max_cwnd)  # slow start
        else:
            self.cwnd = min(self.cwnd + newly_acked / self.cwnd, self.max_cwnd)
        self._arm_timer(reset=True)

    def _on_duplicate_ack(self) -> None:
        self.dup_acks += 1
        if self.dup_acks == 3 and not self.in_fast_recovery:
            # Fast retransmit + (simplified) fast recovery.
            self.ssthresh = max(self.flight_size / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3.0
            self.in_fast_recovery = True
            self.recovery_point = self.next_seq
            self._transmit(self.unacked, is_retransmission=True)
        elif self.in_fast_recovery:
            self.cwnd = min(self.cwnd + 1.0, self.max_cwnd)  # window inflation

    def _sample_rtt(self, ack: int) -> None:
        """RFC 6298 SRTT/RTTVAR update from the newest acked segment."""
        sample = None
        for seq in range(ack - 1, self.unacked - 1, -1):
            if seq in self._send_times and seq not in self._retransmitted:
                sample = self.sim.now - self._send_times[seq]
                break
        if sample is None:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, MIN_RTO), MAX_RTO)

    # -- timers --------------------------------------------------------------

    def _arm_timer(self, reset: bool = False) -> None:
        if self.flight_size == 0:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        if self._timer is not None:
            if not reset:
                return
            self._timer.cancel()
        self._timer = self.sim.schedule(self.rto, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.flight_size == 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_fast_recovery = False
        self.dup_acks = 0
        self.rto = min(self.rto * 2.0, MAX_RTO)
        # Go-back-N: without SACK the sender cannot tell which of the
        # outstanding segments survived, so it rewinds and resends the
        # whole window as the (slow-started) cwnd allows.  Duplicate
        # deliveries are absorbed by the receiver's cumulative ACK.
        self.next_seq = self.unacked
        for seq in list(self._send_times):
            if seq >= self.unacked:
                self._send_times.pop(seq)
                self._retransmitted.add(seq)
        self._transmit(self.unacked, is_retransmission=True)
        self.next_seq = self.unacked + 1
        self._arm_timer()


def install_tcp_flow(
    sim: Simulator,
    src: Node,
    dst: Node,
    flow_id: int,
    mss_bytes: int = 1500,
    total_segments: int | None = None,
    start_time: float = 0.0,
) -> tuple[TcpSender, TcpReceiver]:
    """Wire a sender/receiver pair for one TCP flow and return both."""
    receiver = TcpReceiver(sim, dst, flow_id)
    sender = TcpSender(
        sim,
        src,
        dst,
        flow_id,
        mss_bytes=mss_bytes,
        total_segments=total_segments,
        start_time=start_time,
    )
    return sender, receiver
