"""End-to-end dataset generation: scenario → traces → windows → splits.

This is the paper's "Datasets" paragraph (§4) as code: one pre-training
dataset, fine-tuning datasets for case 1 / case 2, each with a full and
a "smaller" (~10%) variant, and a held-out test fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.splits import temporal_split
from repro.datasets.windows import WindowConfig, WindowDataset, windows_from_trace
from repro.netsim.scenarios import ScenarioConfig, generate_traces
from repro.netsim.trace import Trace
from repro.utils.rng import RngFactory

__all__ = ["DatasetBundle", "generate_dataset", "build_receiver_index"]


@dataclass
class DatasetBundle:
    """A windowed dataset with its splits and provenance."""

    name: str
    train: WindowDataset
    val: WindowDataset
    test: WindowDataset
    receiver_index: dict[int, int]
    scenario: ScenarioConfig
    window_config: WindowConfig
    n_packets: int

    @property
    def n_windows(self) -> int:
        return len(self.train) + len(self.val) + len(self.test)

    def small_fraction(self, fraction: float = 0.1, seed: int = 0) -> "DatasetBundle":
        """The paper's "smaller dataset containing about 10% of the
        packets": subsample the train/val splits, keep the full test set
        so metrics stay comparable."""
        rng = RngFactory(seed).derive(f"{self.name}-fraction{fraction}")
        return DatasetBundle(
            name=f"{self.name}-{int(fraction * 100)}pct",
            train=self.train.sample_fraction(fraction, rng),
            val=self.val.sample_fraction(fraction, rng),
            test=self.test,
            receiver_index=self.receiver_index,
            scenario=self.scenario,
            window_config=self.window_config,
            n_packets=int(self.n_packets * fraction),
        )


def build_receiver_index(traces: list[Trace], existing: dict[int, int] | None = None) -> dict[int, int]:
    """Map raw receiver node ids to contiguous embedding indices.

    Pass the pre-training index as ``existing`` when indexing
    fine-tuning traces so shared receivers keep their ids and new
    receivers get fresh slots.
    """
    index = dict(existing) if existing else {}
    for trace in traces:
        # np.unique is both the sort and the dedup — no per-packet
        # Python loop over the receiver column.
        for receiver in np.unique(trace.receiver_id).tolist():
            if receiver not in index:
                index[receiver] = len(index)
    return index


def generate_dataset(
    scenario: ScenarioConfig,
    window_config: WindowConfig | None = None,
    n_runs: int = 2,
    name: str | None = None,
    receiver_index: dict[int, int] | None = None,
    train_fraction: float = 0.8,
    val_fraction: float = 0.1,
    traces: list[Trace] | None = None,
) -> DatasetBundle:
    """Simulate ``n_runs`` runs of ``scenario`` and window the traces.

    Each run is windowed independently (windows never cross runs) and
    split temporally; the per-run splits are then concatenated so every
    run contributes to train, val and test alike.

    ``traces`` short-circuits the simulation with pre-generated runs
    (e.g. served from the artifact store); they must come from the same
    scenario config, which stays the bundle's recorded provenance.
    """
    window_config = window_config if window_config is not None else WindowConfig()
    if traces is None:
        traces = generate_traces(scenario, n_runs=n_runs)
    elif len(traces) != n_runs:
        raise ValueError(f"expected {n_runs} traces, got {len(traces)}")
    index = build_receiver_index(traces, existing=receiver_index)
    trains, vals, tests = [], [], []
    n_packets = 0
    for trace in traces:
        n_packets += len(trace)
        windows = windows_from_trace(trace, window_config, index)
        if len(windows) < 3:
            continue
        train, val, test = temporal_split(windows, train_fraction, val_fraction)
        trains.append(train)
        vals.append(val)
        tests.append(test)
    if not trains:
        raise ValueError(
            "scenario produced too few packets for even one window; "
            "increase duration or lower window_len"
        )
    return DatasetBundle(
        name=name if name is not None else scenario.kind,
        train=WindowDataset.concatenate(trains),
        val=WindowDataset.concatenate(vals),
        test=WindowDataset.concatenate(tests),
        receiver_index=index,
        scenario=scenario,
        window_config=window_config,
        n_packets=n_packets,
    )
