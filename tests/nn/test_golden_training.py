"""Golden training-loop gates for the nn fast path.

A fixed-seed smoke-scale NTT training run (same wiring as
``core.pretrain``: Adam + warmup-cosine schedule + gradient clipping +
dropout + shuffled loader) is pinned epoch-by-epoch.  The gates:

* the default fused path reproduces the pinned per-epoch loss history
  (tight ``allclose`` — bit-stability across BLAS builds is not
  guaranteed, so the pins alarm on drift while same-machine determinism
  is asserted exactly);
* fused vs composite (``fused=False``) histories agree to near machine
  precision — every fused op is bit-identical except the documented
  1-ulp GELU cube substitution, so the histories may differ only in the
  last bits;
* the zero-copy loader path (``reuse_buffers=True``) is bit-identical
  to the allocating loader;
* ``precision="float32"`` runs end-to-end in float32 and lands near the
  float64 trajectory.
"""

import numpy as np
import pytest

from repro.core.model import NTTConfig, NTTForDelay
from repro.nn import fastpath
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.schedule import warmup_cosine
from repro.nn.trainer import Trainer
from repro.utils.rng import RngFactory

#: Per-epoch losses of the golden run on the default (fused) path.
GOLDEN_TRAIN_LOSS = [
    2.0729813343100307,
    1.7872547454218422,
    1.4975097554658754,
    1.4697067800035339,
]
GOLDEN_VAL_LOSS = [
    1.7444819140465095,
    1.4884333525205755,
    1.3806500895758544,
    1.3601234535272033,
]


def _forward(model, batch):
    features, receiver, target = batch
    return model(features, receiver.astype(np.int64)), target


def golden_run(epochs=4, reuse_buffers=False, precision="float64"):
    config = NTTConfig.smoke(dropout=0.1)
    with fastpath.precision(precision):
        model = NTTForDelay(config)
    data_rng = RngFactory(0).derive("nn-golden-data")
    n = 128
    window_len = config.aggregation.seq_len
    features = data_rng.normal(size=(n, window_len, 3))
    receiver = data_rng.integers(0, config.n_receivers, size=(n, window_len))
    target = data_rng.normal(size=(n,))
    train = ArrayDataset(features[:96], receiver[:96], target[:96])
    val = ArrayDataset(features[96:], receiver[96:], target[96:])
    loader_rng = RngFactory(0).derive("nn-golden-loader")
    train_loader = DataLoader(
        train, 32, shuffle=True, rng=loader_rng, reuse_buffers=reuse_buffers
    )
    val_loader = DataLoader(val, 32, reuse_buffers=reuse_buffers)
    total_steps = len(train_loader) * epochs
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=3e-4),
        mse_loss,
        forward_fn=_forward,
        grad_clip=1.0,
        schedule=warmup_cosine(max(1, int(total_steps * 0.1)), total_steps),
        precision=precision,
    )
    history = trainer.fit(train_loader, val_loader, epochs=epochs)
    return history, model


class TestGoldenTraining:
    def test_fused_path_reproduces_pinned_history(self):
        history, _ = golden_run()
        assert np.allclose(history.train_loss, GOLDEN_TRAIN_LOSS, rtol=1e-9, atol=0)
        assert np.allclose(history.val_loss, GOLDEN_VAL_LOSS, rtol=1e-9, atol=0)

    def test_fused_run_is_deterministic(self):
        first, _ = golden_run()
        second, _ = golden_run()
        assert first.train_loss == second.train_loss
        assert first.val_loss == second.val_loss

    def test_fused_matches_composite_to_machine_precision(self):
        fused, fused_model = golden_run()
        with fastpath.composite_ops():
            composite, composite_model = golden_run()
        for a, b in zip(
            fused.train_loss + fused.val_loss,
            composite.train_loss + composite.val_loss,
        ):
            assert a == pytest.approx(b, rel=1e-11)
        for (name, pf), (_, pc) in zip(
            fused_model.named_parameters(), composite_model.named_parameters()
        ):
            assert np.allclose(pf.data, pc.data, rtol=0, atol=1e-10), name

    def test_zero_copy_loader_is_bit_identical(self):
        plain, _ = golden_run(reuse_buffers=False)
        reused, _ = golden_run(reuse_buffers=True)
        assert plain.train_loss == reused.train_loss
        assert plain.val_loss == reused.val_loss

    def test_float32_mode_trains_in_float32(self):
        history, model = golden_run(epochs=2, precision="float32")
        for _name, parameter in model.named_parameters():
            assert parameter.data.dtype == np.float32
        assert np.all(np.isfinite(history.train_loss))
        # The first epoch tracks float64 to single precision; later
        # epochs drift as float32 rounding compounds through training.
        assert history.train_loss[0] == pytest.approx(GOLDEN_TRAIN_LOSS[0], rel=1e-4)
        assert np.allclose(history.train_loss, GOLDEN_TRAIN_LOSS[:2], rtol=5e-2, atol=0)

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            golden_run(epochs=1, precision="float16")
