"""Tests for unit helpers."""

import pytest

from repro.netsim.units import (
    gbps,
    kbps,
    mbps,
    microseconds,
    milliseconds,
    serialization_delay,
)


def test_rate_conversions():
    assert kbps(1) == 1e3
    assert mbps(1) == 1e6
    assert gbps(1) == 1e9
    assert mbps(30) == 30e6


def test_time_conversions():
    assert milliseconds(5) == pytest.approx(0.005)
    assert microseconds(250) == pytest.approx(0.00025)


def test_serialization_delay_basic():
    # 1500 bytes over 12 Mbps = 1 ms.
    assert serialization_delay(1500, mbps(12)) == pytest.approx(0.001)


def test_serialization_delay_scales_linearly():
    one = serialization_delay(1000, mbps(10))
    two = serialization_delay(2000, mbps(10))
    assert two == pytest.approx(2 * one)


def test_serialization_delay_zero_size():
    assert serialization_delay(0, mbps(10)) == 0.0


def test_serialization_delay_invalid_rate():
    with pytest.raises(ValueError):
        serialization_delay(1500, 0.0)
    with pytest.raises(ValueError):
        serialization_delay(1500, -5.0)


def test_serialization_delay_negative_size():
    with pytest.raises(ValueError):
        serialization_delay(-1, mbps(1))
