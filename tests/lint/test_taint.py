"""Key-taint: interprocedural source→sink flows, with exact chains.

The fixture trees under ``fixtures/taint/`` hold flows the per-file
``determinism`` rule cannot see — a wall-clock read behind a helper
return, an environment read forwarded through a parameter, host
identity crossing modules — plus clean mirrors proving the metadata
path (runtime state in artifacts, never in keys) stays silent.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint

TAINT = Path(__file__).parent / "fixtures" / "taint"


@pytest.fixture(scope="module")
def bad_report():
    return run_lint(
        [TAINT / "bad"], rule_names=["key-taint"], use_baseline=False
    )


@pytest.fixture(scope="module")
def clean_report():
    return run_lint([TAINT / "clean"], use_baseline=False)


def _finding(report, path, line):
    matches = [
        f for f in report.findings if f.path == path and f.line == line
    ]
    assert len(matches) == 1, [f.format() for f in report.findings]
    return matches[0]


class TestBadFlows:
    def test_every_bad_flow_is_flagged(self, bad_report):
        assert [(f.path, f.line) for f in bad_report.findings] == [
            ("api/keys.py", 15),
            ("api/keys.py", 20),
            ("api/keys.py", 29),
            ("runtime/campaign.py", 9),
        ]
        assert bad_report.exit_code == 1

    def test_return_chain_through_helper(self, bad_report):
        finding = _finding(bad_report, "api/keys.py", 15)
        assert finding.chain == (
            "`time.time()` (api/keys.py:10)",
            "returned by `_stamp()` (api/keys.py:14)",
            "feeds `stable_hash(...)` (api/keys.py:15)",
        )
        assert "wall-clock" in finding.message

    def test_param_forwarding_into_sink(self, bad_report):
        # The environment read never touches stable_hash lexically: it
        # rides a dict through _digest's parameter.  The finding sits at
        # the call that injects the taint, and the chain ends at the
        # real sink inside the callee.
        finding = _finding(bad_report, "api/keys.py", 20)
        assert finding.chain == (
            "`os.environ.get()` (api/keys.py:19)",
            "passed to `_digest(payload=…)` (api/keys.py:20)",
            "feeds `stable_hash(...)` (api/keys.py:24)",
        )
        assert "environment" in finding.message

    def test_set_order_through_a_variable(self, bad_report):
        # One assignment hop: lexical set-in-key stays the determinism
        # rule's finding, the variable-laundered version is ours.
        finding = _finding(bad_report, "api/keys.py", 29)
        assert finding.chain == (
            "`set(...)` (api/keys.py:28)",
            "feeds `stable_hash(...)` (api/keys.py:29)",
        )

    def test_cross_module_chain(self, bad_report):
        finding = _finding(bad_report, "runtime/campaign.py", 9)
        assert finding.chain == (
            "`socket.gethostname()` (runtime/ident.py:7)",
            "returned by `host_tag()` (runtime/campaign.py:8)",
            "feeds `stable_hash(...)` (runtime/campaign.py:9)",
        )
        assert "process-identity" in finding.message

    def test_chain_travels_to_json(self, bad_report):
        payload = bad_report.to_dict()
        assert payload["version"] == 2
        chains = [f["chain"] for f in payload["findings"]]
        assert all(isinstance(c, list) and c for c in chains)


class TestCleanMirrors:
    def test_zero_false_positives(self, clean_report):
        # Wall time into metadata, sorted(set(...)) into keys, host tag
        # into a manifest row: all sanctioned, all silent — under every
        # rule, not just key-taint.
        assert clean_report.findings == []
        assert clean_report.exit_code == 0


def test_single_file_scan_still_sees_whole_program(tmp_path):
    # Linting ONE file must not shrink the call-graph: the program
    # index is built per lint root, so a chain whose source lives in a
    # file that was *not* selected for linting still resolves.
    pkg = tmp_path / "runtime"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "ident.py").write_text(
        "import socket\n"
        "\n"
        "\n"
        "def host_tag():\n"
        "    return socket.gethostname()\n",
        encoding="utf-8",
    )
    (pkg / "keys.py").write_text(
        "from .ident import host_tag\n"
        "\n"
        "\n"
        "def stable_hash(obj):\n"
        "    return repr(obj)\n"
        "\n"
        "\n"
        "def task_key(spec):\n"
        "    tag = host_tag()\n"
        '    return stable_hash({"spec": spec, "host": tag})\n',
        encoding="utf-8",
    )
    report = run_lint(
        [pkg / "keys.py"], rule_names=["key-taint"], use_baseline=False
    )
    assert [(f.path, f.line) for f in report.findings] == [
        ("runtime/keys.py", 10),
    ]
    assert report.findings[0].chain == (
        "`socket.gethostname()` (runtime/ident.py:5)",
        "returned by `host_tag()` (runtime/keys.py:9)",
        "feeds `stable_hash(...)` (runtime/keys.py:10)",
    )
