"""Learning-rate schedules.

A schedule is a callable ``step -> multiplier`` applied to the
optimizer's base learning rate by the :class:`~repro.nn.trainer.Trainer`.
"""

from __future__ import annotations

import math

__all__ = ["constant", "warmup_cosine", "warmup_linear", "step_decay", "apply_schedule"]


def constant():
    """No schedule: multiplier 1 forever."""

    def schedule(step: int) -> float:
        return 1.0

    return schedule


def warmup_cosine(warmup_steps: int, total_steps: int, floor: float = 0.0):
    """Linear warmup followed by cosine decay to ``floor``.

    The standard recipe for short transformer pre-training runs.
    """
    if warmup_steps < 0 or total_steps <= 0:
        raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
    if warmup_steps >= total_steps:
        raise ValueError(f"warmup ({warmup_steps}) must end before total ({total_steps})")

    def schedule(step: int) -> float:
        if step < warmup_steps:
            return (step + 1) / max(warmup_steps, 1)
        progress = (step - warmup_steps) / (total_steps - warmup_steps)
        progress = min(progress, 1.0)
        return floor + (1.0 - floor) * 0.5 * (1.0 + math.cos(math.pi * progress))

    return schedule


def warmup_linear(warmup_steps: int, total_steps: int, floor: float = 0.0):
    """Linear warmup then linear decay to ``floor``."""
    if warmup_steps < 0 or total_steps <= 0:
        raise ValueError("warmup_steps must be >= 0 and total_steps > 0")

    def schedule(step: int) -> float:
        if step < warmup_steps:
            return (step + 1) / max(warmup_steps, 1)
        progress = (step - warmup_steps) / max(total_steps - warmup_steps, 1)
        return max(floor, 1.0 - progress)

    return schedule


def step_decay(decay_every: int, factor: float = 0.5):
    """Multiply the LR by ``factor`` every ``decay_every`` steps."""
    if decay_every <= 0:
        raise ValueError(f"decay_every must be positive, got {decay_every}")
    if not 0.0 < factor <= 1.0:
        raise ValueError(f"factor must be in (0, 1], got {factor}")

    def schedule(step: int) -> float:
        return factor ** (step // decay_every)

    return schedule


def apply_schedule(optimizer, base_lr: float, schedule, step: int) -> float:
    """Set ``optimizer.lr`` from the schedule; returns the applied LR."""
    lr = base_lr * schedule(step)
    optimizer.lr = lr
    return lr
