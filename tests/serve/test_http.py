"""End-to-end tests for the HTTP serving front.

A real server runs on a background thread (module scope) and real
HTTP requests go through the loopback interface — these tests cover
the whole path the production traffic takes: parse, resolve, batch,
forward, split, respond.
"""

import http.client
import json
import shutil

import numpy as np
import pytest

from repro.serve import (
    PredictionServer,
    ServerConfig,
    ServerHandle,
    ServingClient,
    run_load,
)


@pytest.fixture(scope="module")
def live_server(served_checkpoint):
    config = ServerConfig(
        models=(str(served_checkpoint),), port=0, max_wait_us=1000.0
    )
    with ServerHandle(PredictionServer(config)) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(live_server):
    return ServingClient(live_server.host, live_server.port)


class TestEndpoints:
    def test_healthz(self, client, served_checkpoint):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["default_model"] == str(served_checkpoint)
        assert health["uptime_s"] > 0

    def test_models_describes_configured_refs(self, client, served_checkpoint):
        payload = client.models()
        assert payload["default"] == str(served_checkpoint)
        row = payload["models"][0]
        assert row["ref"] == str(served_checkpoint)
        assert row["task"] == "delay"
        assert row["min_window_len"] == 64
        assert payload["loads_total"] >= 1

    def test_metrics_populate_after_traffic(
        self, client, reference_predictor, smoke_bundle
    ):
        test = smoke_bundle.test
        client.predict(test.features[:4], test.receiver[:4])
        snapshot = client.metrics()
        assert snapshot["requests_total"] >= 1
        assert snapshot["predictions_total"] >= 4
        assert snapshot["batches_total"] >= 1
        assert snapshot["model_loads_total"] >= 1
        assert sum(snapshot["batch_occupancy"].values()) == snapshot["batches_total"]

    def test_unknown_route_404(self, client):
        with pytest.raises(RuntimeError, match="404"):
            client._request("GET", "/nope")

    def test_get_predict_405(self, client):
        with pytest.raises(RuntimeError, match="405"):
            client._request("GET", "/predict")


class TestPredict:
    def test_served_predictions_match_reference(
        self, client, reference_predictor, smoke_bundle
    ):
        test = smoke_bundle.test
        served = client.predict(test.features[:6], test.receiver[:6])
        expected = reference_predictor.predict(test.features[:6], test.receiver[:6])
        # JSON round-trips float64 exactly (repr-based), so the served
        # values are bit-identical to the in-process forward.
        assert np.array_equal(served, expected)

    def test_empty_request(self, client):
        served = client.predict(
            np.zeros((0, 64, 3)), np.zeros((0, 64), dtype=np.int64)
        )
        assert served.shape == (0,)

    def test_unknown_model_404(self, client, smoke_bundle):
        test = smoke_bundle.test
        with pytest.raises(RuntimeError, match="404"):
            client.predict(test.features[:2], test.receiver[:2], model="missing.npz")

    def test_message_size_on_delay_model_400(self, client, smoke_bundle):
        test = smoke_bundle.test
        with pytest.raises(RuntimeError, match="400"):
            client.predict(
                test.features[:2], test.receiver[:2], message_size=np.ones(2)
            )

    def test_missing_fields_400(self, client):
        with pytest.raises(RuntimeError, match="required"):
            client._request("POST", "/predict", {"features": [[[1.0]]]})

    def test_ragged_payload_400(self, client):
        with pytest.raises(RuntimeError, match="rectangular"):
            client._request(
                "POST", "/predict",
                {"features": [[[1.0], [1.0, 2.0]]], "receiver": [[0, 1]]},
            )

    def test_invalid_json_400(self, live_server):
        connection = http.client.HTTPConnection(
            live_server.host, live_server.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/predict", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            assert response.status == 400
            assert "JSON" in payload["error"]
        finally:
            connection.close()


class TestConcurrentLoad:
    def test_load_generator_matches_reference_bit_for_bit(
        self, live_server, reference_predictor, smoke_bundle
    ):
        test = smoke_bundle.test
        per_request = 4
        n_requests = 10
        requests = [
            {
                "features": test.features[
                    i * per_request:(i + 1) * per_request
                ].tolist(),
                "receiver": test.receiver[
                    i * per_request:(i + 1) * per_request
                ].tolist(),
            }
            for i in range(n_requests)
        ]
        result = run_load(
            live_server.host, live_server.port, requests, concurrency=8
        )
        assert result.errors == 0
        assert result.windows == n_requests * per_request
        expected = reference_predictor.predict(
            test.features[: n_requests * per_request],
            test.receiver[: n_requests * per_request],
        )
        served = np.asarray(
            [row for rows in result.predictions for row in rows], dtype=np.float64
        )
        assert np.array_equal(served, expected)
        assert result.latency_percentiles_ms()["p99"] is not None


class TestWarmLifecycle:
    def test_lru_eviction_recreates_batchers(
        self, served_checkpoint, smoke_bundle, tmp_path
    ):
        """With capacity 1, alternating models forces evict + reload,
        and the per-model batcher follows the fresh warm instance."""
        second = tmp_path / "second.npz"
        shutil.copy(served_checkpoint, second)
        config = ServerConfig(
            models=(str(served_checkpoint), str(second)),
            port=0,
            lru_capacity=1,
            max_wait_us=500.0,
        )
        test = smoke_bundle.test
        with ServerHandle(PredictionServer(config)) as handle:
            client = ServingClient(handle.host, handle.port)
            first_round = client.predict(test.features[:2], test.receiver[:2])
            client.predict(
                test.features[:2], test.receiver[:2], model=str(second)
            )
            second_round = client.predict(test.features[:2], test.receiver[:2])
            snapshot = client.metrics()
        assert np.array_equal(first_round, second_round)
        # Three loads: default, second, default again after eviction.
        assert snapshot["model_loads_total"] == 3
        assert snapshot["model_evictions_total"] == 2


class TestConfigValidation:
    def test_server_needs_a_model(self):
        with pytest.raises(ValueError, match="at least one model"):
            ServerConfig(models=())


class TestSaturation:
    def test_saturated_server_returns_503_with_retry_after(
        self, served_checkpoint, smoke_bundle
    ):
        import threading
        import time

        config = ServerConfig(
            models=(str(served_checkpoint),), port=0,
            max_batch_windows=4, max_wait_us=0.0, max_pending_windows=4,
        )
        server = PredictionServer(config)
        test = smoke_bundle.test
        body = json.dumps({
            "features": test.features[:4].tolist(),
            "receiver": test.receiver[:4].tolist(),
        })
        headers = {"Content-Type": "application/json"}
        gate = threading.Event()
        with ServerHandle(server) as handle:
            try:
                # Jam the single prediction lane so the first request's
                # flush stays in flight while the second arrives.
                server.executor.submit(gate.wait)
                first_status = {}

                def first_request():
                    conn = http.client.HTTPConnection(
                        handle.host, handle.port, timeout=30
                    )
                    conn.request("POST", "/predict", body, headers)
                    first_status["status"] = conn.getresponse().status
                    conn.close()

                thread = threading.Thread(target=first_request)
                thread.start()
                # Wait until the first request's windows are in flight —
                # only then is a second request guaranteed to be shed.
                deadline = time.monotonic() + 10
                while not any(
                    batcher._inflight_windows
                    for batcher in server._batchers.values()
                ):
                    assert time.monotonic() < deadline, "first request never queued"
                    time.sleep(0.01)

                conn = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=30
                )
                conn.request("POST", "/predict", body, headers)
                response = conn.getresponse()
                payload = json.loads(response.read())
                conn.close()
                assert response.status == 503
                assert int(response.getheader("Retry-After")) >= 1
                assert "saturated" in payload["error"]
                assert payload["retry_after_s"] > 0
            finally:
                gate.set()
            thread.join(timeout=30)
            assert first_status["status"] == 200
            assert server.metrics.rejected_total == 1
            assert server.metrics.snapshot()["rejected_total"] == 1
