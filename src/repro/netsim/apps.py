"""Applications: message senders and packet sinks.

The paper's senders "generate 1 Mbps of messages each, following
real-world traffic distributions" (§4).  :class:`MessageSource` draws
message sizes from a workload distribution, arrivals from a Poisson
process matched to the offered load, splits each message into MTU-sized
packets, and paces them onto the access link.  :class:`PacketSink`
records delivered packets into a :class:`~repro.netsim.trace.TraceCollector`.

Message ids are drawn from the *simulation* (``sim.next_message_id()``),
not from a process-global counter: a trace's ``message_id`` column must
depend only on the scenario being simulated, never on what else ran
earlier in the same process (a global counter leaked in-process run
order into cached traces).
"""

from __future__ import annotations

import numpy as np

from repro.netsim.core import Simulator
from repro.netsim.node import Node
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.trace import TraceCollector
from repro.netsim.units import MTU_BYTES
from repro.netsim.workloads import MessageSizeDistribution, PoissonArrivals

__all__ = ["MessageSource", "PacketSink"]


class PacketSink:
    """Receives packets on a host and records traced ones.

    One sink can serve many flows: register it as the node's default
    handler or per flow id.
    """

    __slots__ = ("sim", "node", "collector", "packets_received", "bytes_received", "messages_completed")

    def __init__(self, sim: Simulator, node: Node, collector: TraceCollector | None = None):
        self.sim = sim
        self.node = node
        self.collector = collector
        self.packets_received = 0
        self.bytes_received = 0
        self.messages_completed = 0

    def install_default(self) -> None:
        """Make this sink the node's fallback handler for all flows."""
        self.node.default_handler = self.on_packet

    def install_flow(self, flow_id: int) -> None:
        """Handle a single flow id."""
        self.node.register_flow(flow_id, self.on_packet)

    def on_packet(self, packet: Packet) -> None:
        """Deliver callback invoked by the owning node."""
        self.packets_received += 1
        self.bytes_received += packet.size
        if packet.is_message_end:
            self.messages_completed += 1
        if self.collector is not None:
            self.collector.record(packet, self.sim._now)


class MessageSource:
    """Poisson message generator over a UDP-like transport.

    Each message is split into MTU-sized packets injected back-to-back;
    the sender's access link then paces them at its line rate, so bursts
    arrive at the bottleneck shaped exactly like ns-3's OnOff/bulk
    applications over a point-to-point access.

    Args:
        sim: the event loop.
        node: sending host.
        destinations: candidate receiver nodes.  Each message picks one
            uniformly at random (a single-element list reproduces the
            paper's case-1 setup; several elements reproduce case 2).
        flow_id: flow identifier stamped on every packet.
        offered_load_bps: long-run average sending rate.
        size_distribution: message-size workload.
        rng: random stream for arrivals, sizes and destination choice.
        start_time: when the application starts (the paper randomises
            application start times across runs).
        stop_time: last instant at which new messages may be generated.
        mtu_bytes: maximum packet payload size.
    """

    __slots__ = (
        "sim",
        "node",
        "destinations",
        "flow_id",
        "arrivals",
        "size_distribution",
        "rng",
        "start_time",
        "stop_time",
        "mtu_bytes",
        "messages_sent",
        "packets_sent",
        "bytes_sent",
        "_started",
    )

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        destinations: list[Node],
        flow_id: int,
        offered_load_bps: float,
        size_distribution: MessageSizeDistribution,
        rng: np.random.Generator,
        start_time: float = 0.0,
        stop_time: float | None = None,
        mtu_bytes: int = MTU_BYTES,
    ):
        if not destinations:
            raise ValueError("MessageSource needs at least one destination")
        if mtu_bytes < 64:
            raise ValueError(f"mtu must be at least 64 bytes, got {mtu_bytes}")
        self.sim = sim
        self.node = node
        self.destinations = list(destinations)
        self.flow_id = flow_id
        self.arrivals = PoissonArrivals(offered_load_bps, size_distribution)
        self.size_distribution = size_distribution
        self.rng = rng
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self.mtu_bytes = int(mtu_bytes)
        self.messages_sent = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self._started = False

    def start(self) -> None:
        """Arm the first message arrival."""
        if self._started:
            raise RuntimeError("MessageSource.start() called twice")
        self._started = True
        first_delay = self.start_time + self.arrivals.next_interarrival(self.rng)
        self.sim.schedule_at(max(first_delay, self.sim.now), self._on_arrival)

    def _on_arrival(self) -> None:
        if self.stop_time is not None and self.sim.now > self.stop_time:
            return
        self._send_message()
        self.sim.post(self.arrivals.next_interarrival(self.rng), self._on_arrival)

    def _send_message(self) -> None:
        message_size = self.size_distribution.sample(self.rng)
        destination = self.destinations[int(self.rng.integers(len(self.destinations)))]
        message_id = self.sim.next_message_id()
        self.messages_sent += 1
        remaining = message_size
        seq = 0
        node = self.node
        src_id = node.node_id
        dst_id = destination.node_id
        flow_id = self.flow_id
        mtu = self.mtu_bytes
        # Hoist the first-hop resolution out of the packet loop: every
        # packet of a message leaves through the same egress channel.
        channel = node.forwarding.get(dst_id)
        now = self.sim._now
        if message_size <= mtu and channel is not None:
            # Single-packet message (the workload's common case): skip
            # the burst machinery entirely.
            channel.send(
                Packet(
                    src=src_id,
                    dst=dst_id,
                    size=message_size,
                    flow_id=flow_id,
                    message_id=message_id,
                    kind=PacketKind.DATA,
                    send_time=now,
                    message_size=message_size,
                    is_message_end=True,
                    traced=True,
                )
            )
            node.packets_forwarded += 1
            self.packets_sent += 1
            self.bytes_sent += message_size
            return
        burst = []
        append = burst.append
        while remaining > 0:
            payload = min(remaining, mtu)
            remaining -= payload
            packet = Packet(
                src=src_id,
                dst=dst_id,
                size=payload,
                flow_id=flow_id,
                message_id=message_id,
                seq=seq,
                kind=PacketKind.DATA,
                send_time=now,
                message_size=message_size,
                is_message_end=(remaining == 0),
                traced=True,
            )
            append(packet)
            seq += 1
        if channel is not None:
            channel.send_burst(burst)
            node.packets_forwarded += seq
        else:
            for packet in burst:
                node.send(packet)
        self.packets_sent += seq
        self.bytes_sent += message_size
