"""Known-bad asyncio fixture: blocking calls inside async def."""

import socket
import time
from pathlib import Path


async def handler(path: Path):
    time.sleep(0.1)
    with open(path) as fh:
        data = fh.read()
    sock = socket.create_connection(("example.com", 80))
    text = path.read_text()
    return data, sock, text
