"""Gradient checking utilities used by the test suite.

:func:`gradcheck` compares autograd gradients with central finite
differences.  Because the whole engine runs in float64, agreement to
~1e-6 relative error is expected for smooth ops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "gradcheck"]


def numerical_gradient(
    fn: Callable[[list[Tensor]], Tensor],
    inputs: list[np.ndarray],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` receives the inputs wrapped as constant Tensors and must
    return a scalar Tensor.
    """
    base = [np.array(array, dtype=np.float64) for array in inputs]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for position in range(target.size):
        original = target[position]
        target[position] = original + epsilon
        plus = fn([Tensor(a) for a in base]).item()
        target[position] = original - epsilon
        minus = fn([Tensor(a) for a in base]).item()
        target[position] = original
        flat[position] = (plus - minus) / (2.0 * epsilon)
    return grad


def gradcheck(
    fn: Callable[[list[Tensor]], Tensor],
    inputs: list[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> bool:
    """Assert autograd and numerical gradients agree for every input.

    Returns True on success; raises ``AssertionError`` with a readable
    message otherwise.
    """
    tensors = [Tensor(np.array(array, dtype=np.float64), requires_grad=True) for array in inputs]
    output = fn(tensors)
    if output.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()
    for index, tensor in enumerate(tensors):
        numeric = numerical_gradient(fn, inputs, index, epsilon=epsilon)
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(numeric)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
