"""repro.lint — static enforcement of the repo's runtime invariants.

The correctness story of this codebase rests on conventions that tests
can only probe dynamically: SeedSequence-only randomness, cache-key
purity of registered stages, allocation-free fused kernels, non-blocking
serving coroutines, lock-guarded cross-thread state.  This package
encodes them as AST rules over the source tree, with a pluggable rule
registry (mirroring the scenario/stage registries), justified inline
suppressions, and a committed baseline for grandfathered findings.

Entry points::

    repro lint                      # CLI: exit 0 clean / 1 findings / 2 usage
    from repro.lint import run_lint # library: LintReport

Importing this package registers the built-in rules.
"""

from .baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    discover_baseline,
    load_baseline,
    save_baseline,
)
from .callgraph import ProgramIndex, program_index_for_root
from .context import SourceModule, load_module
from .engine import (
    REPORT_VERSION,
    LintReport,
    changed_files,
    collect_files,
    default_root,
    run_lint,
)
from .fingerprint import (
    FINGERPRINT_FILENAME,
    check_fingerprints,
    compute_fingerprints,
    discover_fingerprints,
    load_fingerprints,
    save_fingerprints,
)
from .findings import SEVERITIES, Finding
from .rules import LINT_RULES, LintRule, LintRuleRegistry, register_rule

from . import checks  # noqa: F401  (registers the built-in rules)
from . import taint  # noqa: F401  (registers key-taint)

__all__ = [
    "BASELINE_FILENAME",
    "FINGERPRINT_FILENAME",
    "Finding",
    "LINT_RULES",
    "LintReport",
    "LintRule",
    "LintRuleRegistry",
    "ProgramIndex",
    "REPORT_VERSION",
    "SEVERITIES",
    "SourceModule",
    "apply_baseline",
    "changed_files",
    "check_fingerprints",
    "collect_files",
    "compute_fingerprints",
    "default_root",
    "discover_baseline",
    "discover_fingerprints",
    "load_baseline",
    "load_fingerprints",
    "load_module",
    "program_index_for_root",
    "register_rule",
    "run_lint",
    "save_fingerprints",
]
