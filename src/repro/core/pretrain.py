"""Pre-training: masked delay prediction (§3, "Learning network patterns").

"To pre-train NTT, we mask the delay of the most recent packet in the
sequence and use a decoder with linear layers to predict the actual
delay."  The masking lives inside :class:`~repro.core.model.NTT`; this
module wires datasets, the trainer and evaluation together.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.evaluation import evaluate_delay
from repro.core.features import FeaturePipeline
from repro.core.model import NTTConfig, NTTForDelay
from repro.datasets.generation import DatasetBundle
from repro.datasets.windows import WindowDataset
from repro.nn import fastpath
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.schedule import warmup_cosine
from repro.nn.trainer import Trainer, TrainingHistory
from repro.utils.rng import RngFactory

__all__ = ["TrainSettings", "PretrainResult", "pretrain", "make_delay_loaders"]


@dataclass(frozen=True)
class TrainSettings:
    """Optimisation hyper-parameters shared by pre-training and fine-tuning."""

    epochs: int = 15
    batch_size: int = 64
    lr: float = 3e-4
    warmup_fraction: float = 0.1
    grad_clip: float = 1.0
    patience: int | None = 5
    seed: int = 0

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0 or self.lr <= 0:
            raise ValueError("epochs, batch_size and lr must be positive")

    @classmethod
    def smoke(cls) -> "TrainSettings":
        return cls(epochs=3, batch_size=32, patience=None)

    def scaled(self, epochs: int) -> "TrainSettings":
        return replace(self, epochs=epochs)


@dataclass
class PretrainResult:
    """Outcome of a pre-training run."""

    model: NTTForDelay
    pipeline: FeaturePipeline
    history: TrainingHistory
    test_mse_seconds2: float

    @property
    def test_mse_scaled(self) -> float:
        """Delay MSE in the paper's "×10⁻³" display convention."""
        return self.test_mse_seconds2 * 1e3


def make_delay_loaders(
    pipeline: FeaturePipeline,
    train: WindowDataset,
    val: WindowDataset,
    settings: TrainSettings,
) -> tuple[DataLoader, DataLoader]:
    """Build (train, val) loaders of ``(features, receiver, target)``."""
    rng = RngFactory(settings.seed).derive("delay-loader")
    train_ds = ArrayDataset(
        pipeline.transform_features(train),
        train.receiver,
        pipeline.transform_delay_target(train),
    )
    val_ds = ArrayDataset(
        pipeline.transform_features(val),
        val.receiver,
        pipeline.transform_delay_target(val),
    )
    # The trainer consumes each batch before advancing, so both loaders
    # take the zero-copy path (``numpy.take`` into reused buffers).
    return (
        DataLoader(train_ds, settings.batch_size, shuffle=True, rng=rng, reuse_buffers=True),
        DataLoader(val_ds, max(settings.batch_size, 128), reuse_buffers=True),
    )


def _delay_forward(model, batch):
    features, receiver, target = batch
    return model(features, receiver.astype(np.int64)), target


def pretrain(
    config: NTTConfig,
    bundle: DatasetBundle,
    settings: TrainSettings | None = None,
    pipeline: FeaturePipeline | None = None,
    verbose: bool = False,
    precision: str = "float64",
) -> PretrainResult:
    """Pre-train an NTT on a (pre-training) dataset bundle.

    A fresh :class:`FeaturePipeline` is fitted on the bundle's training
    split unless one is supplied.  Returns the trained model together
    with its pipeline — fine-tuning must reuse both.

    ``precision="float32"`` builds and trains the model in float32
    (half the matmul memory bandwidth, for exploratory sweeps); the
    float64 default keeps results — and cache keys — exactly as before.
    """
    settings = settings if settings is not None else TrainSettings()
    if pipeline is None:
        pipeline = FeaturePipeline().fit(bundle.train)
    with fastpath.precision(precision):
        model = NTTForDelay(config)
    train_loader, val_loader = make_delay_loaders(pipeline, bundle.train, bundle.val, settings)
    total_steps = max(len(train_loader) * settings.epochs, 2)
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=settings.lr),
        mse_loss,
        forward_fn=_delay_forward,
        grad_clip=settings.grad_clip,
        schedule=warmup_cosine(
            max(1, int(total_steps * settings.warmup_fraction)), total_steps
        ),
        precision=precision,
    )
    history = trainer.fit(
        train_loader,
        val_loader,
        epochs=settings.epochs,
        patience=settings.patience,
        verbose=verbose,
    )
    with fastpath.precision(precision):
        test_mse = evaluate_delay(model, pipeline, bundle.test)
    return PretrainResult(model, pipeline, history, test_mse)
