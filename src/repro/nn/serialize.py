"""Checkpointing: save and load module state dicts as ``.npz`` files.

Sharing a pre-trained model instead of the underlying data is a core
part of the paper's vision (§5, "Collaborative pre-training") — these
helpers are the minimal version of that story.

Checkpoints default to deflate compression (small artifacts for the
content-addressed store).  ``save_checkpoint(..., compress=False)``
writes the arrays *stored* (uncompressed) instead, which lets
:func:`load_state_mmap` memory-map the parameter payloads straight out
of the zip container — the serving runtime's warm-load path.
"""

from __future__ import annotations

import json
import struct
import zipfile
from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "load_state", "load_state_mmap"]

_META_KEY = "__meta__"


def save_checkpoint(
    module: Module, path, metadata: dict | None = None, compress: bool = True
) -> None:
    """Write ``module.state_dict()`` (plus JSON metadata) to ``path``.

    Metadata must be JSON-serialisable; it typically records the model
    configuration so checkpoints are self-describing.  ``compress=False``
    stores the arrays raw so :func:`load_state_mmap` can serve them as
    zero-copy memory maps.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name collides with metadata key {_META_KEY!r}")
    payload = dict(state)
    meta_json = json.dumps(metadata if metadata is not None else {})
    payload[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    if compress:
        np.savez_compressed(path, **payload)
    else:
        np.savez(path, **payload)


def load_state(path) -> tuple[dict, dict]:
    """Read ``(state_dict, metadata)`` from a checkpoint file."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path) as data:
        state = {key: data[key] for key in data.files if key != _META_KEY}
        metadata = {}
        if _META_KEY in data.files:
            metadata = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
    return state, metadata


def load_checkpoint(module: Module, path) -> dict:
    """Load parameters into ``module``; returns the stored metadata."""
    state, metadata = load_state(path)
    module.load_state_dict(state)
    return metadata


def _stored_member_array(handle, path: Path, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one *stored* (uncompressed) ``.npy`` zip member.

    The local file header, not the central directory, decides where the
    member's bytes start (their extra fields may differ), so it is read
    directly: 30 fixed bytes, then the filename and extra field.
    """
    handle.seek(info.header_offset)
    local = handle.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ValueError(f"corrupt local header for {info.filename!r}")
    name_len, extra_len = struct.unpack("<HH", local[26:30])
    data_offset = info.header_offset + 30 + name_len + extra_len
    handle.seek(data_offset)
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, fortran_order, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran_order, dtype = np.lib.format.read_array_header_2_0(handle)
    else:
        raise ValueError(f"unsupported npy format version {version}")
    if dtype.hasobject:
        raise ValueError(f"cannot memory-map object array {info.filename!r}")
    array = np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=handle.tell(),
        shape=shape,
        order="F" if fortran_order else "C",
    )
    return array


def load_state_mmap(path) -> tuple[dict, dict]:
    """Read ``(state_dict, metadata)``, memory-mapping what it can.

    Checkpoints written with ``save_checkpoint(..., compress=False)``
    keep their ``.npy`` members *stored*, so every parameter comes back
    as a read-only :class:`numpy.memmap` view into the checkpoint file —
    no decompression pass, and pages fault in lazily as the model is
    actually used.  Deflated members (the compressed default) fall back
    to a normal read, so this loader is safe on any checkpoint.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    state: dict[str, np.ndarray] = {}
    metadata: dict = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as handle:
        for info in archive.infolist():
            name = info.filename
            key = name[:-4] if name.endswith(".npy") else name
            array = None
            if info.compress_type == zipfile.ZIP_STORED:
                try:
                    array = _stored_member_array(handle, path, info)
                except (ValueError, AttributeError):
                    array = None  # unexpected layout: read it instead
            if array is None:
                with archive.open(name) as member:
                    array = np.lib.format.read_array(member)
            if key == _META_KEY:
                metadata = json.loads(bytes(np.asarray(array).tobytes()).decode("utf-8"))
            else:
                state[key] = array
    return state, metadata
