"""Determinism: a 2-worker sweep is bit-identical to the serial run.

Stage randomness derives only from the specs (never from worker
identity or execution order), so the artifacts a pool produces must
match the serial ones array-for-array, and the evaluation metrics must
match float-for-float.
"""

import numpy as np
import pytest

from repro.api import ArtifactStore, TrainSettings
from repro.nn.serialize import load_state
from repro.runtime import CampaignEngine, expand_grid, plan_campaign

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture(scope="module")
def campaign_pair(tmp_path_factory):
    """One campaign, run serially and on a 2-worker pool, fresh stores."""
    specs = expand_grid(
        scenarios=["pretrain", "case1"], scales=["smoke"], seeds=[0],
        pretrain=FAST, finetune=FAST,
    )
    outcomes = {}
    for label, workers in (("serial", 1), ("pool", 2)):
        store = ArtifactStore(tmp_path_factory.mktemp(label) / "cache")
        plan = plan_campaign(specs)
        result = CampaignEngine(store=store, workers=workers).run(plan)
        assert not result.failed_tasks(), result.failed_tasks()
        outcomes[label] = (store, result)
    return outcomes


def test_same_artifacts_written(campaign_pair):
    serial_store, _ = campaign_pair["serial"]
    pool_store, _ = campaign_pair["pool"]
    for kind in ("traces", "bundles", "checkpoints", "evaluations"):
        assert serial_store.keys(kind) == pool_store.keys(kind), kind
    assert len(serial_store.keys("checkpoints")) >= 2  # pretrain + finetune


def test_checkpoints_bit_identical(campaign_pair):
    serial_store, _ = campaign_pair["serial"]
    pool_store, _ = campaign_pair["pool"]
    for key in serial_store.keys("checkpoints"):
        serial_state, serial_meta = load_state(serial_store.path("checkpoints", key))
        pool_state, pool_meta = load_state(pool_store.path("checkpoints", key))
        assert serial_state.keys() == pool_state.keys()
        for name, array in serial_state.items():
            assert np.array_equal(array, pool_state[name]), (key, name)
        assert serial_meta["history"]["train_loss"] == pool_meta["history"]["train_loss"]


def test_traces_bit_identical(campaign_pair):
    """The netsim fast path stays bit-identical under --workers 2: every
    stored trace column matches the serial run array-for-array."""
    serial_store, _ = campaign_pair["serial"]
    pool_store, _ = campaign_pair["pool"]
    serial_dir = serial_store.root / "traces"
    run_files = sorted(path.name for path in serial_dir.glob("*-run*.npz"))
    assert run_files, "campaign stored no traces"
    for name in run_files:
        with np.load(serial_dir / name) as serial_data:
            with np.load(pool_store.root / "traces" / name) as pool_data:
                assert sorted(serial_data.files) == sorted(pool_data.files), name
                for column in serial_data.files:
                    assert np.array_equal(serial_data[column], pool_data[column]), (
                        name,
                        column,
                    )


def test_metrics_bit_identical(campaign_pair):
    _, serial_result = campaign_pair["serial"]
    _, pool_result = campaign_pair["pool"]
    assert serial_result.results.keys() == pool_result.results.keys()
    for task_id, payload in serial_result.results.items():
        other = pool_result.results[task_id]
        for column in ("model_mse", "test_mse", "test_mse_seconds2"):
            if column in payload:
                assert payload[column] == other[column], (task_id, column)
