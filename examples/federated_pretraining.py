#!/usr/bin/env python
"""Collaborative pre-training with federated averaging (§5).

Several "organisations" each simulate their own private traffic
(different seeds — think different vantage points of similar networks)
and never share packets.  Each FedAvg round they train locally and share
only model weights; the server averages them into a collective NTT.

Since the stage API, the whole loop is the registered
``federated_pretrain`` pipeline stage, so this example simply submits an
:class:`ExperimentSpec` through the campaign engine: the run is planned,
executed, recorded in a JSON manifest and cached — the second invocation
is served from the artifact store, and the collective model lands in the
checkpoint store where ``Experiment``/``Predictor`` tooling can load it.

Run::

    python examples/federated_pretraining.py
    python examples/federated_pretraining.py --rounds 3 --clients 4
    repro sweep --stages federated_pretrain --scales smoke   # same stage
"""

from __future__ import annotations

import argparse

from repro.api import ArtifactStore, ExperimentSpec
from repro.runtime import plan_campaign, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small"])
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--cache-dir", default=None, help="artifact store root")
    args = parser.parse_args()

    spec = ExperimentSpec(
        scenario="pretrain",
        scale=args.scale,
        pipeline=("federated_pretrain",),
        stage_params={
            "federated_pretrain": {"n_clients": args.clients, "rounds": args.rounds}
        },
    )
    store = ArtifactStore(args.cache_dir)

    print(f"== Campaign plan ({args.clients} private orgs, {args.rounds} FedAvg rounds)")
    print(plan_campaign([spec]).describe(store))

    print("== Running through the campaign engine (weights cross, packets don't)")
    result = run_campaign([spec], store=store)
    print(result.format_summary())
    if not result.ok:
        raise SystemExit(1)

    (task_id,) = list(result.results)
    row = result.results[task_id]
    for round_index, mse in enumerate(row["round_test_mse"]):
        print(f"   round {round_index}: global test MSE {mse * 1e3:.4f} x1e-3 (unseen org)")
    print(
        f"   collective model after {row['rounds']} round(s): "
        f"{row['global_test_mse'] * 1e3:.4f} x1e-3"
    )

    print("== Re-submitting the same spec (served from the artifact store)")
    again = run_campaign([spec], store=store)
    print(
        f"   {again.cache_hits}/{again.summary['total']} task(s) were cache hits; "
        f"manifest: {again.manifest_path}"
    )


if __name__ == "__main__":
    main()
