"""Tests for trace collection and message-completion bookkeeping."""

import numpy as np
import pytest

from repro.netsim.packet import Packet
from repro.netsim.trace import Trace, TraceCollector


def record(collector, *, send, recv, size=1500, dst=1, flow=1, message=0,
           message_size=1500, end=False, traced=True):
    packet = Packet(
        src=0, dst=dst, size=size, flow_id=flow, message_id=message,
        message_size=message_size, is_message_end=end, traced=traced,
    )
    packet.send_time = send
    collector.record(packet, recv)


def test_untraced_packets_skipped():
    collector = TraceCollector()
    record(collector, send=0.0, recv=0.1, traced=False)
    assert collector.finalize().send_time.size == 0


def test_trace_sorted_by_send_time():
    collector = TraceCollector()
    record(collector, send=2.0, recv=2.1, message=1)
    record(collector, send=1.0, recv=1.1, message=0)
    trace = collector.finalize()
    assert list(trace.send_time) == [1.0, 2.0]


def test_delay_computation():
    collector = TraceCollector()
    record(collector, send=1.0, recv=1.25)
    trace = collector.finalize()
    assert trace.delay[0] == pytest.approx(0.25)


def test_mct_single_packet_message():
    collector = TraceCollector()
    record(collector, send=1.0, recv=1.5, message=3, end=True)
    trace = collector.finalize()
    assert trace.mct[0] == pytest.approx(0.5)


def test_mct_spans_whole_message():
    collector = TraceCollector()
    record(collector, send=1.0, recv=1.2, message=9)
    record(collector, send=1.1, recv=1.6, message=9)
    record(collector, send=1.2, recv=1.9, message=9, end=True)
    trace = collector.finalize()
    # From first send (1.0) to last delivery (1.9).
    assert np.allclose(trace.mct, 0.9)


def test_mct_independent_per_message():
    collector = TraceCollector()
    record(collector, send=0.0, recv=0.1, message=1, end=True)
    record(collector, send=5.0, recv=5.4, message=2, end=True)
    trace = collector.finalize()
    assert trace.mct[0] == pytest.approx(0.1)
    assert trace.mct[1] == pytest.approx(0.4)


def test_subset_preserves_alignment():
    collector = TraceCollector()
    for index in range(10):
        record(collector, send=float(index), recv=index + 0.5, message=index,
               size=100 * (index + 1))
    trace = collector.finalize()
    subset = trace.subset(trace.size > 500)
    assert len(subset) == 5
    assert np.all(subset.size > 500)
    assert np.allclose(subset.delay, 0.5)


def test_save_load_roundtrip(tmp_path):
    collector = TraceCollector()
    for index in range(5):
        record(collector, send=float(index), recv=index + 0.3, message=index, end=True)
    trace = collector.finalize()
    path = tmp_path / "trace.npz"
    trace.save(path)
    loaded = Trace.load(path)
    assert np.array_equal(loaded.send_time, trace.send_time)
    assert np.array_equal(loaded.mct, trace.mct)
    assert np.array_equal(loaded.is_message_end, trace.is_message_end)


def test_column_length_validation():
    with pytest.raises(ValueError):
        Trace(
            send_time=np.zeros(3),
            recv_time=np.zeros(2),  # mismatched
            size=np.zeros(3),
            receiver_id=np.zeros(3),
            flow_id=np.zeros(3),
            message_id=np.zeros(3),
            message_size=np.zeros(3),
            is_message_end=np.zeros(3, dtype=bool),
        )


def test_missing_column_rejected():
    with pytest.raises(ValueError):
        Trace(send_time=np.zeros(3))


def test_empty_trace():
    trace = TraceCollector().finalize()
    assert len(trace) == 0
    assert trace.mct.size == 0
