"""Tests for the content-addressed artifact store.

Covers the ISSUE's acceptance criteria: checkpoint round-trips are
bit-for-bit, same-spec lookups hit, changed seed/window lookups miss,
and a second context with the same spec never re-simulates or
re-trains.
"""

import numpy as np
import pytest

import repro.core.pipeline as pipeline_module
from repro.api import ArtifactStore, Predictor
from repro.api.store import bundle_key, finetuned_key, pretrained_key, traces_key
from repro.core.model import NTTConfig, NTTForDelay
from repro.core.pipeline import ExperimentContext, get_scale
from repro.core.pretrain import TrainSettings, pretrain
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind, generate_traces
from repro.nn.serialize import load_checkpoint, save_checkpoint

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture(scope="module")
def smoke_pretrain(smoke_bundle):
    """One tiny pre-training run shared by the round-trip tests."""
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=FAST)


class TestGenericAccess:
    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ValueError, match="bundles"):
            store.path("models", "abc")

    def test_get_missing_returns_none(self, store):
        assert store.get("bundles", "missing") is None

    def test_summary_counts_files(self, store, smoke_bundle):
        store.put_bundle("k1", smoke_bundle)
        summary = store.summary()
        assert summary["bundles"]["count"] == 1
        assert summary["bundles"]["bytes"] > 0

    def test_clear(self, store, smoke_bundle):
        store.put_bundle("k1", smoke_bundle)
        assert store.clear() == 1
        assert store.keys("bundles") == []


class TestBundleRoundTrip:
    def test_arrays_and_metadata_survive(self, store, smoke_bundle):
        store.put_bundle("key", smoke_bundle)
        restored = store.get_bundle("key")
        for split in ("train", "val", "test"):
            original = getattr(smoke_bundle, split)
            loaded = getattr(restored, split)
            assert np.array_equal(original.features, loaded.features)
            assert np.array_equal(original.receiver, loaded.receiver)
            assert np.array_equal(original.delay_target, loaded.delay_target)
            assert np.array_equal(
                original.mct_target, loaded.mct_target, equal_nan=True
            )
            assert np.array_equal(original.message_size, loaded.message_size)
            assert np.array_equal(original.mct_seq, loaded.mct_seq, equal_nan=True)
            assert np.array_equal(original.end_seq, loaded.end_seq)
        assert restored.receiver_index == smoke_bundle.receiver_index
        assert restored.scenario == smoke_bundle.scenario
        assert restored.window_config == smoke_bundle.window_config
        assert restored.n_packets == smoke_bundle.n_packets
        assert restored.name == smoke_bundle.name


class TestCheckpointRoundTrip:
    def test_save_get_load_is_bit_for_bit(self, store, smoke_bundle, smoke_pretrain):
        """save_checkpoint -> ArtifactStore.get -> load_checkpoint must
        reproduce identical predictions."""
        key = "roundtrip"
        save_checkpoint(
            smoke_pretrain.model, store.path("checkpoints", key), metadata={"x": 1}
        )
        path = store.get("checkpoints", key)
        assert path is not None

        fresh = NTTForDelay(NTTConfig.smoke())
        metadata = load_checkpoint(fresh, path)
        assert metadata == {"x": 1}

        test = smoke_bundle.test
        original = Predictor(smoke_pretrain.model, smoke_pretrain.pipeline)
        restored = Predictor(fresh, smoke_pretrain.pipeline)
        assert np.array_equal(
            original.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_pretrained_result_roundtrip(self, store, smoke_bundle, smoke_pretrain):
        store.put_pretrained("key", smoke_pretrain)
        restored = store.get_pretrained("key")
        assert restored.test_mse_seconds2 == smoke_pretrain.test_mse_seconds2
        assert restored.history.epochs_run == smoke_pretrain.history.epochs_run
        test = smoke_bundle.test
        assert np.array_equal(
            Predictor(smoke_pretrain.model, smoke_pretrain.pipeline).predict_dataset(test),
            Predictor(restored.model, restored.pipeline).predict_dataset(test),
        )


class TestCacheKeys:
    def test_same_inputs_hit(self):
        scenario = ScenarioConfig.smoke(ScenarioKind.PRETRAIN)
        scale = get_scale("smoke")
        assert bundle_key(scenario, scale.window, 1) == bundle_key(
            ScenarioConfig.smoke(ScenarioKind.PRETRAIN), scale.window, 1
        )
        assert pretrained_key(
            scenario, scale.window, 1, NTTConfig.smoke(), FAST
        ) == pretrained_key(scenario, scale.window, 1, NTTConfig.smoke(), FAST)

    def test_changed_seed_misses(self):
        scale = get_scale("smoke")
        assert bundle_key(
            ScenarioConfig.smoke(seed=0), scale.window, 1
        ) != bundle_key(ScenarioConfig.smoke(seed=1), scale.window, 1)

    def test_changed_window_misses(self):
        scenario = ScenarioConfig.smoke()
        scale = get_scale("smoke")
        from repro.datasets.windows import WindowConfig

        assert bundle_key(scenario, scale.window, 1) != bundle_key(
            scenario, WindowConfig(window_len=32, stride=4), 1
        )

    def test_model_and_settings_key_checkpoints(self):
        scenario = ScenarioConfig.smoke()
        scale = get_scale("smoke")
        base = pretrained_key(scenario, scale.window, 1, NTTConfig.smoke(), FAST)
        assert base != pretrained_key(
            scenario, scale.window, 1, NTTConfig.smoke(n_layers=2), FAST
        )
        assert base != pretrained_key(
            scenario, scale.window, 1, NTTConfig.smoke(), FAST.scaled(2)
        )

    def test_artifact_kinds_never_collide(self):
        scenario = ScenarioConfig.smoke()
        scale = get_scale("smoke")
        assert traces_key(scenario, 1) != bundle_key(scenario, scale.window, 1)

    def test_finetuned_key_depends_on_task_and_fraction(self):
        scenario = ScenarioConfig.smoke(ScenarioKind.CASE1)
        base = finetuned_key("abc", scenario, "delay", "decoder_only", None, FAST)
        assert base != finetuned_key("abc", scenario, "mct", "decoder_only", None, FAST)
        assert base != finetuned_key("abc", scenario, "delay", "decoder_only", 0.1, FAST)


class TestStoreBackedContext:
    """The acceptance criterion: a second context with the same spec is
    served from the store — no second simulation or training run."""

    @pytest.fixture
    def fast_scale(self):
        from dataclasses import replace

        scale = get_scale("smoke")
        return replace(scale, pretrain_settings=FAST, finetune_settings=FAST)

    @pytest.fixture
    def counters(self, monkeypatch):
        counts = {"generate_dataset": 0, "pretrain": 0}
        real_generate = pipeline_module.generate_dataset
        real_pretrain = pipeline_module.pretrain

        def counting_generate(*args, **kwargs):
            counts["generate_dataset"] += 1
            return real_generate(*args, **kwargs)

        def counting_pretrain(*args, **kwargs):
            counts["pretrain"] += 1
            return real_pretrain(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "generate_dataset", counting_generate)
        monkeypatch.setattr(pipeline_module, "pretrain", counting_pretrain)
        return counts

    def test_second_context_never_recomputes(self, fast_scale, store, counters):
        first = ExperimentContext(fast_scale, store=store)
        first.bundle(ScenarioKind.PRETRAIN)
        first.pretrained()
        assert counters == {"generate_dataset": 1, "pretrain": 1}

        second = ExperimentContext(fast_scale, store=store)
        bundle = second.bundle(ScenarioKind.PRETRAIN)
        result = second.pretrained()
        assert counters == {"generate_dataset": 1, "pretrain": 1}
        assert len(bundle.train) == len(first.bundle(ScenarioKind.PRETRAIN).train)
        assert result.test_mse_seconds2 == first.pretrained().test_mse_seconds2

    def test_changed_seed_recomputes(self, fast_scale, store, counters):
        ExperimentContext(fast_scale, store=store, seed=0).bundle(ScenarioKind.PRETRAIN)
        ExperimentContext(fast_scale, store=store, seed=1).bundle(ScenarioKind.PRETRAIN)
        assert counters["generate_dataset"] == 2

    def test_changed_window_recomputes(self, fast_scale, store, counters):
        from dataclasses import replace

        from repro.datasets.windows import WindowConfig

        ExperimentContext(fast_scale, store=store).bundle(ScenarioKind.PRETRAIN)
        narrow = replace(fast_scale, window=WindowConfig(window_len=32, stride=4))
        ExperimentContext(narrow, store=store).bundle(ScenarioKind.PRETRAIN)
        assert counters["generate_dataset"] == 2

    def test_storeless_context_still_works(self, fast_scale, counters):
        ExperimentContext(fast_scale).bundle(ScenarioKind.PRETRAIN)
        ExperimentContext(fast_scale).bundle(ScenarioKind.PRETRAIN)
        assert counters["generate_dataset"] == 2


class TestTraces:
    def test_trace_roundtrip(self, store):
        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7)
        traces = generate_traces(config, n_runs=2)
        key = traces_key(config, 2)
        assert store.get_traces(key, 2) is None
        store.put_traces(key, traces)
        restored = store.get_traces(key, 2)
        assert len(restored) == 2
        for original, loaded in zip(traces, restored):
            assert np.array_equal(original.send_time, loaded.send_time)
            assert np.array_equal(original.delay, loaded.delay)

    def test_has_traces_requires_complete_run_set(self, store):
        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7)
        traces = generate_traces(config, n_runs=2)
        key = traces_key(config, 2)
        store.put_traces(key, traces)
        assert store.has_traces(key, 2)
        assert not store.has_traces(key, 3)
        assert store.is_current("traces", key)  # run count from the sidecar
        store.trace_paths(key, 2)[1].unlink()
        assert not store.has_traces(key, 2)
        assert not store.is_current("traces", key)
        assert store.get_traces(key, 2) is None


class TestSchemaVersioning:
    """Artifacts stamped by older code must read as cache misses."""

    def test_bundle_stamp_roundtrip(self, store, smoke_bundle):
        from repro.api.store import ARTIFACT_SCHEMA_VERSION, _SCHEMA_KEY

        path = store.put_bundle("key", smoke_bundle)
        with np.load(path) as data:
            assert int(data[_SCHEMA_KEY]) == ARTIFACT_SCHEMA_VERSION

    def test_stale_bundle_misses(self, store, smoke_bundle, monkeypatch):
        import repro.api.store as store_module

        path = store.put_bundle("key", smoke_bundle)
        assert store.get_bundle("key") is not None
        monkeypatch.setattr(store_module, "ARTIFACT_SCHEMA_VERSION", 999)
        assert store.get_bundle("key") is None
        assert path.exists()  # still on disk, just never served

    def test_unstamped_bundle_misses(self, store, smoke_bundle):
        # Simulate a pre-schema artifact: same arrays, no stamp.
        path = store.put_bundle("key", smoke_bundle)
        with np.load(path) as data:
            payload = {name: data[name] for name in data.files if not name.startswith("__schema")}
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        assert store.get_bundle("key") is None

    def test_stale_checkpoint_misses(self, store, smoke_pretrain, monkeypatch):
        import repro.api.store as store_module

        store.put_pretrained("key", smoke_pretrain)
        assert store.get_pretrained("key") is not None
        monkeypatch.setattr(store_module, "ARTIFACT_SCHEMA_VERSION", 999)
        assert store.get_pretrained("key") is None

    def test_stale_traces_miss(self, store, monkeypatch):
        import repro.api.store as store_module

        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7)
        key = traces_key(config, 1)
        store.put_traces(key, generate_traces(config, n_runs=1))
        assert store.get_traces(key, 1) is not None
        monkeypatch.setattr(store_module, "ARTIFACT_SCHEMA_VERSION", 999)
        assert store.get_traces(key, 1) is None

    def test_traces_with_global_message_ids_miss(self, store):
        """Run sets written before message ids moved onto the simulator
        (no ``message_id_scope`` in the sidecar) must re-simulate: their
        ``message_id`` column depended on in-process run order."""
        import json

        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7)
        key = traces_key(config, 1)
        store.put_traces(key, generate_traces(config, n_runs=1))
        meta_path = store._trace_meta_path(key)
        meta = json.loads(meta_path.read_text())
        assert meta["message_id_scope"] == "simulation"
        del meta["message_id_scope"]
        meta_path.write_text(json.dumps(meta))
        assert not store.has_traces(key, 1)
        assert store.get_traces(key, 1) is None

    def test_is_current_sees_through_stale_files(self, store, smoke_bundle, smoke_pretrain, monkeypatch):
        import repro.api.store as store_module

        store.put_bundle("b", smoke_bundle)
        store.put_pretrained("c", smoke_pretrain)
        store.put_json("evaluations", "e", {"x": 1})
        for kind, key in (("bundles", "b"), ("checkpoints", "c"), ("evaluations", "e")):
            assert store.is_current(kind, key), kind
        monkeypatch.setattr(store_module, "ARTIFACT_SCHEMA_VERSION", 999)
        for kind, key in (("bundles", "b"), ("checkpoints", "c"), ("evaluations", "e")):
            assert store.has(kind, key), kind  # the file is still there...
            assert not store.is_current(kind, key), kind  # ...but never serves

    def test_stale_json_misses(self, store, monkeypatch):
        import repro.api.store as store_module

        store.put_json("evaluations", "key", {"model_mse": 1.0})
        assert store.get_json("evaluations", "key") == {"model_mse": 1.0}
        monkeypatch.setattr(store_module, "ARTIFACT_SCHEMA_VERSION", 999)
        assert store.get_json("evaluations", "key") is None


class TestJsonRecords:
    def test_manifest_roundtrip(self, store):
        manifest = {"campaign_id": "abc", "summary": {"total": 3}}
        path = store.put_manifest("abc", manifest)
        assert path.suffix == ".json"
        assert store.get_manifest("abc") == manifest

    def test_unknown_json_kind_rejected(self, store):
        with pytest.raises(ValueError, match="JSON kind"):
            store.put_json("bundles", "key", {})

    def test_summary_and_clear_cover_json_kinds(self, store):
        store.put_json("evaluations", "e1", {"x": 1})
        store.put_manifest("m1", {"y": 2})
        summary = store.summary()
        assert summary["evaluations"]["count"] == 1
        assert summary["manifests"]["count"] == 1
        assert store.clear() == 2
        assert store.get_json("evaluations", "e1") is None


def _write_bundle_process(root, key: str, seed: int) -> str:
    """Top-level helper (picklable) for the concurrency test."""
    from repro.api import ArtifactStore
    from repro.datasets.generation import generate_dataset
    from repro.datasets.windows import WindowConfig

    bundle = generate_dataset(
        ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7),
        window_config=WindowConfig(window_len=64, stride=4),
        n_runs=1,
        name="concurrent",
    )
    ArtifactStore(root).put_bundle(key, bundle)
    return key


class TestConcurrentWrites:
    """Worker-pool safety: same-key writers never corrupt the store."""

    def test_two_processes_same_key(self, store):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_write_bundle_process, str(store.root), "shared", seed)
                for seed in (0, 1)
            ]
            for future in futures:
                assert future.result() == "shared"
        # Exactly one artifact, no leftover temp files, loadable content.
        directory = store.root / "bundles"
        assert sorted(path.name for path in directory.iterdir()) == ["shared.npz"]
        restored = store.get_bundle("shared")
        assert restored is not None
        assert restored.name == "concurrent"

    def test_publish_tolerates_lost_race(self, store, tmp_path):
        # Simulate FileExistsError semantics (non-POSIX os.replace).
        target = tmp_path / "artifact.npz"
        target.write_bytes(b"winner")
        temp = tmp_path / "temp.npz"
        temp.write_bytes(b"loser")
        import os

        real_replace = os.replace

        def raising_replace(src, dst):
            raise FileExistsError(dst)

        os.replace = raising_replace
        try:
            store._publish(temp, target)
        finally:
            os.replace = real_replace
        assert target.read_bytes() == b"winner"
        assert not temp.exists()
