#!/usr/bin/env python
"""Serving: run the micro-batching prediction service end-to-end.

The deployment story from the roadmap — "one pre-trained model, many
consumers" — in four steps:

1. pre-train the NTT (served from the artifact cache on repeated runs)
   and save it as an uncompressed, memory-mappable checkpoint;
2. start the :class:`~repro.serve.PredictionServer` on a background
   thread (``ServerHandle``), the same runtime behind ``repro serve``;
3. hit it with a synchronous client call and then with the in-repo
   load generator — many concurrent 1-window requests that the
   :class:`~repro.serve.MicroBatcher` coalesces into fused forwards;
4. read the server's own ``/metrics`` (throughput, batch occupancy,
   latency percentiles) and shut down cleanly.

Run::

    python examples/serving.py                  # fast (smoke scale)
    python examples/serving.py --requests 256   # heavier load
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.api import Experiment, ExperimentSpec, Predictor
from repro.serve import (
    PredictionServer,
    ServerConfig,
    ServerHandle,
    ServingClient,
    run_load,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--no-cache", action="store_true", help="bypass the artifact store")
    parser.add_argument("--requests", type=int, default=64,
                        help="load-generator requests (one window each)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="concurrent keep-alive connections")
    args = parser.parse_args()

    spec = ExperimentSpec(scenario="pretrain", scale=args.scale)
    exp = Experiment.uncached(spec) if args.no_cache else Experiment(spec)

    print(f"== 1. Pre-training the NTT ({args.scale} scale) and checkpointing it")
    result = exp.pretrained()
    bundle = exp.bundle()
    checkpoint = Path(tempfile.mkdtemp(prefix="repro-serving-")) / "ntt.npz"
    # compress=False keeps the parameter payloads stored, so the server
    # memory-maps them instead of decompressing at load time.
    Predictor(result.model, result.pipeline).save(checkpoint, compress=False)
    print(f"   {result.model.num_parameters()} parameters -> {checkpoint}")

    print("== 2. Starting the prediction server on a background thread")
    config = ServerConfig(models=(str(checkpoint),), port=0)
    with ServerHandle(PredictionServer(config)) as handle:
        client = ServingClient(handle.host, handle.port)
        health = client.wait_ready()
        print(f"   http://{handle.host}:{handle.port} -> /healthz {health}")
        for row in client.models()["models"]:
            print(
                f"   serving {row['ref']} (task={row['task']}, "
                f"window>={row['min_window_len']}, {row['parameters']} parameters)"
            )

        print("== 3a. One synchronous request through the client facade (ms)")
        sample = bundle.test.subset(np.arange(min(3, len(bundle.test))))
        served = client.predict(sample.features, sample.receiver)
        local = Predictor(result.model, result.pipeline).predict(
            sample.features, sample.receiver
        )
        for over_http, direct in zip(served, local):
            print(f"   served {over_http * 1e3:7.2f} ms   direct {direct * 1e3:7.2f} ms")

        print(
            f"== 3b. Load generator: {args.requests} concurrent 1-window "
            f"requests on {args.concurrency} connections"
        )
        n = min(args.requests, len(bundle.test))
        repeats = -(-args.requests // n)
        features = np.tile(bundle.test.features[:n], (repeats, 1, 1))[: args.requests]
        receiver = np.tile(bundle.test.receiver[:n], (repeats, 1))[: args.requests]
        requests = [
            {
                "features": features[i:i + 1].tolist(),
                "receiver": receiver[i:i + 1].tolist(),
            }
            for i in range(args.requests)
        ]
        load = run_load(handle.host, handle.port, requests, args.concurrency)
        latency = load.latency_percentiles_ms()
        print(
            f"   {load.requests} requests, {load.errors} errors: "
            f"{load.requests_per_s:.0f} req/s, "
            f"p50 {latency['p50']:.1f} ms / p99 {latency['p99']:.1f} ms"
        )

        print("== 4. Server-side metrics (micro-batching at work)")
        metrics = client.metrics()
        print(
            f"   {metrics['predictions_total']} predictions in "
            f"{metrics['batches_total']} fused batches "
            f"(mean occupancy {metrics['mean_batch_windows']:.1f} windows/batch)"
        )
        occupied = {
            bucket: count
            for bucket, count in metrics["batch_occupancy"].items()
            if count
        }
        print(f"   batch-occupancy histogram: {occupied}")
    print("   server drained and stopped cleanly")


if __name__ == "__main__":
    main()
