"""Message-size workloads.

The paper's senders follow "real-world traffic distributions" from the
Homa paper [Montazeri et al., SIGCOMM '18]: most messages are small, but
a heavy tail of large messages carries most of the bytes.  We provide a
log-normal body + Pareto tail mixture with that qualitative shape, plus
the individual distributions for experimentation.

All samplers return integral message sizes in bytes and take the RNG
explicitly, keeping dataset generation reproducible.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "MessageSizeDistribution",
    "FixedMessageSizes",
    "UniformMessageSizes",
    "LogNormalMessageSizes",
    "ParetoMessageSizes",
    "HomaLikeMessageSizes",
    "PoissonArrivals",
]


class MessageSizeDistribution(ABC):
    """Base class for message-size samplers."""

    #: Smallest message we generate (one minimum-size payload).
    min_bytes: int = 64

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one message size in bytes."""

    @abstractmethod
    def mean(self) -> float:
        """Expected message size in bytes (used to compute arrival rates)."""

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` message sizes."""
        return np.array([self.sample(rng) for _ in range(count)], dtype=np.int64)


class FixedMessageSizes(MessageSizeDistribution):
    """Every message has the same size; useful for deterministic tests."""

    def __init__(self, size_bytes: int):
        if size_bytes < self.min_bytes:
            raise ValueError(f"size must be >= {self.min_bytes}, got {size_bytes}")
        self.size_bytes = int(size_bytes)

    def sample(self, rng: np.random.Generator) -> int:
        return self.size_bytes

    def mean(self) -> float:
        return float(self.size_bytes)


class UniformMessageSizes(MessageSizeDistribution):
    """Uniform sizes in ``[low, high]`` bytes."""

    def __init__(self, low: int, high: int):
        if not self.min_bytes <= low <= high:
            raise ValueError(f"need {self.min_bytes} <= low <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class LogNormalMessageSizes(MessageSizeDistribution):
    """Log-normal sizes, clipped to ``[min_bytes, max_bytes]``."""

    def __init__(self, median_bytes: float = 2000.0, sigma: float = 1.0, max_bytes: int = 10_000_000):
        if median_bytes <= 0 or sigma <= 0:
            raise ValueError("median_bytes and sigma must be positive")
        self.mu = math.log(median_bytes)
        self.sigma = float(sigma)
        self.max_bytes = int(max_bytes)

    def sample(self, rng: np.random.Generator) -> int:
        value = rng.lognormal(self.mu, self.sigma)
        return int(min(max(value, self.min_bytes), self.max_bytes))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)


class ParetoMessageSizes(MessageSizeDistribution):
    """Pareto (power-law) sizes: ``P(X > x) = (scale / x) ** alpha``."""

    def __init__(self, scale_bytes: float = 1000.0, alpha: float = 1.5, max_bytes: int = 10_000_000):
        if alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1 for a finite mean, got {alpha}")
        if scale_bytes < self.min_bytes:
            raise ValueError(f"scale must be >= {self.min_bytes}, got {scale_bytes}")
        self.scale = float(scale_bytes)
        self.alpha = float(alpha)
        self.max_bytes = int(max_bytes)

    def sample(self, rng: np.random.Generator) -> int:
        value = self.scale * (1.0 + rng.pareto(self.alpha))
        return int(min(value, self.max_bytes))

    def mean(self) -> float:
        # Mean of the (untruncated) shifted Pareto; truncation bias is
        # negligible for the defaults (max_bytes >> scale).
        return self.scale * self.alpha / (self.alpha - 1.0)


class HomaLikeMessageSizes(MessageSizeDistribution):
    """Mixture approximating the Homa workloads the paper cites.

    With probability ``1 - tail_fraction`` a small log-normal message
    (RPC-style), otherwise a heavy Pareto message.  The default
    parameters give a mean around 6 KB with >50% of bytes in the tail,
    producing the bursty queue dynamics the pre-training task relies on.
    """

    def __init__(
        self,
        body_median_bytes: float = 1200.0,
        body_sigma: float = 0.8,
        tail_fraction: float = 0.07,
        tail_scale_bytes: float = 20_000.0,
        tail_alpha: float = 1.6,
        max_bytes: int = 2_000_000,
    ):
        if not 0.0 <= tail_fraction <= 1.0:
            raise ValueError(f"tail_fraction must be in [0, 1], got {tail_fraction}")
        self.body = LogNormalMessageSizes(body_median_bytes, body_sigma, max_bytes)
        self.tail = ParetoMessageSizes(tail_scale_bytes, tail_alpha, max_bytes)
        self.tail_fraction = float(tail_fraction)

    def sample(self, rng: np.random.Generator) -> int:
        if rng.random() < self.tail_fraction:
            return self.tail.sample(rng)
        return self.body.sample(rng)

    def mean(self) -> float:
        return (
            self.tail_fraction * self.tail.mean()
            + (1.0 - self.tail_fraction) * self.body.mean()
        )


class PoissonArrivals:
    """Poisson message arrival process matching a target offered load.

    The arrival rate is ``load_bps / (8 * mean_message_bytes)`` messages
    per second, so the long-run offered load equals ``load_bps``.
    """

    def __init__(self, load_bps: float, size_distribution: MessageSizeDistribution):
        if load_bps <= 0:
            raise ValueError(f"offered load must be positive, got {load_bps}")
        self.load_bps = float(load_bps)
        self.size_distribution = size_distribution
        self.rate_per_second = load_bps / (8.0 * size_distribution.mean())

    def next_interarrival(self, rng: np.random.Generator) -> float:
        """Draw the time until the next message arrival."""
        return float(rng.exponential(1.0 / self.rate_per_second))
