"""``# repro:`` pragma comments: suppressions and hot-region markers.

Two pragma verbs exist:

``# repro: allow(<rule>): <justification>``
    Suppress findings of ``<rule>`` for the statement the comment is
    attached to.  The justification is **required** — a bare ``allow``
    is itself reported as a ``pragma`` finding, so every suppression in
    the tree carries its reason next to the code it excuses.

``# repro: hot``
    Marks a hot region for the hot-loop-allocation rule.  On a ``def``
    line (or a standalone line directly above one) it marks that
    function; standalone anywhere else it marks the whole module.

Attachment follows the statement structure, not just the line: a
trailing comment on a compound statement (``def``, ``if``, ``for``,
``with``) covers that statement's entire body, so one justified
``allow`` on an ``if not fused:`` line excuses the whole composite
escape hatch beneath it.  A standalone comment attaches to the next
statement.  Comments are read with :mod:`tokenize` so strings that
merely *contain* ``# repro:`` are never misparsed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass

__all__ = ["Pragma", "Suppression", "HotRegion", "parse_pragmas", "PragmaError"]

_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(
    r"allow\(\s*(?P<rule>[A-Za-z0-9_-]+)\s*\)\s*(?::\s*(?P<why>.*))?$"
)


@dataclass(frozen=True)
class Pragma:
    """A raw ``# repro:`` comment before semantic interpretation."""

    line: int
    col: int
    body: str
    standalone: bool  # True when the comment is alone on its line


@dataclass(frozen=True)
class Suppression:
    rule: str
    justification: str
    line: int  # line the comment sits on
    start: int  # first source line the suppression covers
    end: int  # last source line the suppression covers (inclusive)

    def covers(self, line: int) -> bool:
        return self.start <= line <= self.end


@dataclass(frozen=True)
class HotRegion:
    start: int
    end: int  # inclusive; whole-module regions span 1..len(lines)

    def covers(self, line: int) -> bool:
        return self.start <= line <= self.end


@dataclass(frozen=True)
class PragmaError:
    line: int
    col: int
    message: str


def _iter_pragma_comments(source: str):
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    code_lines: set[int] = set()
    comments: list[tuple[int, int, str]] = []
    try:
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
                tokenize.ENCODING,
            ):
                for ln in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(ln)
    except tokenize.TokenError:
        # Unterminated constructs are the parser's problem; report what
        # was tokenized before the error.
        pass
    for line, col, text in comments:
        match = _PRAGMA_RE.search(text)
        if match:
            yield Pragma(
                line=line,
                col=col,
                body=match.group("body").strip(),
                standalone=line not in code_lines,
            )


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(lineno, end_lineno) for every statement, widest-first per line."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


def _attached_span(
    pragma: Pragma, spans: list[tuple[int, int]], next_code_line: int | None
) -> tuple[int, int]:
    """The source range a suppression comment covers."""
    anchor = pragma.line if not pragma.standalone else next_code_line
    if anchor is not None:
        starting_here = [s for s in spans if s[0] == anchor]
        if starting_here:
            # Widest statement starting on the anchor line: a comment on
            # an `if`/`def` line excuses the whole block beneath it.
            return max(starting_here, key=lambda s: s[1] - s[0])
        if not pragma.standalone:
            # Trailing comment on a continuation line of a multi-line
            # statement: cover the statement that spans it.
            spanning = [s for s in spans if s[0] <= anchor <= s[1]]
            if spanning:
                return min(spanning, key=lambda s: s[1] - s[0])
        return (anchor, anchor)
    return (pragma.line, pragma.line)


def parse_pragmas(
    source: str, tree: ast.Module, known_rules: tuple[str, ...]
) -> tuple[list[Suppression], list[HotRegion], list[PragmaError]]:
    """Interpret every ``# repro:`` comment in ``source``.

    Returns suppressions, hot regions, and errors for malformed pragmas
    (unknown verb, unknown rule, or an ``allow`` missing its required
    justification) — the lint engine reports those under the ``pragma``
    rule so a typo can't silently disable a check.
    """
    total_lines = source.count("\n") + 1
    spans = _statement_spans(tree)
    function_spans = [
        (node.lineno, node.end_lineno or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    code_starts = sorted({s[0] for s in spans})

    suppressions: list[Suppression] = []
    hot_regions: list[HotRegion] = []
    errors: list[PragmaError] = []

    for pragma in _iter_pragma_comments(source):
        next_code = next((ln for ln in code_starts if ln > pragma.line), None)
        if pragma.body == "hot":
            anchor = pragma.line if not pragma.standalone else next_code
            fn = next((s for s in function_spans if s[0] == anchor), None)
            if fn is not None:
                hot_regions.append(HotRegion(start=fn[0], end=fn[1]))
            else:
                hot_regions.append(HotRegion(start=1, end=total_lines))
            continue
        allow = _ALLOW_RE.fullmatch(pragma.body)
        if allow:
            rule = allow.group("rule")
            why = (allow.group("why") or "").strip()
            if rule not in known_rules:
                errors.append(
                    PragmaError(
                        line=pragma.line,
                        col=pragma.col,
                        message=(
                            f"allow() names unknown rule {rule!r}; "
                            f"known rules: {', '.join(known_rules)}"
                        ),
                    )
                )
                continue
            if not why:
                errors.append(
                    PragmaError(
                        line=pragma.line,
                        col=pragma.col,
                        message=(
                            f"allow({rule}) requires a justification: "
                            f"write '# repro: allow({rule}): <reason>'"
                        ),
                    )
                )
                continue
            start, end = _attached_span(pragma, spans, next_code)
            suppressions.append(
                Suppression(
                    rule=rule,
                    justification=why,
                    line=pragma.line,
                    start=start,
                    end=end,
                )
            )
            continue
        errors.append(
            PragmaError(
                line=pragma.line,
                col=pragma.col,
                message=(
                    f"unrecognized pragma {pragma.body!r}; expected "
                    "'hot' or 'allow(<rule>): <justification>'"
                ),
            )
        )
    return suppressions, hot_regions, errors
