"""Positional encodings for the transformer encoder."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["SinusoidalPositionalEncoding", "LearnedPositionalEncoding"]


class SinusoidalPositionalEncoding(Module):
    """The fixed sin/cos encoding of Vaswani et al. (2017).

    Added to the embedded sequence; no learned state.
    """

    def __init__(self, d_model: int, max_len: int = 4096):
        super().__init__()
        if d_model % 2 != 0:
            raise ValueError(f"d_model must be even for sinusoidal PE, got {d_model}")
        position = np.arange(max_len)[:, None].astype(np.float64)
        div = np.exp(np.arange(0, d_model, 2) * (-np.log(10000.0) / d_model))
        table = np.zeros((max_len, d_model), dtype=np.float64)
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div)
        self.d_model = d_model
        self.max_len = max_len
        self._table = table  # constant, not a Parameter

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[-2]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        return x + Tensor(self._table[:seq_len])

    def __repr__(self) -> str:
        return f"SinusoidalPositionalEncoding(d_model={self.d_model})"


class LearnedPositionalEncoding(Module):
    """BERT-style learned position embeddings (one vector per position)."""

    def __init__(self, d_model: int, max_len: int, rng: np.random.Generator):
        super().__init__()
        self.d_model = d_model
        self.max_len = max_len
        self.weight = Parameter(init.normal((max_len, d_model), rng, std=0.02), name="weight")

    def forward(self, x: Tensor) -> Tensor:
        seq_len = x.shape[-2]
        if seq_len > self.max_len:
            raise ValueError(f"sequence length {seq_len} exceeds max_len {self.max_len}")
        return x + self.weight[:seq_len]

    def __repr__(self) -> str:
        return f"LearnedPositionalEncoding(d_model={self.d_model}, max_len={self.max_len})"
