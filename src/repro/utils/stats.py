"""Small statistics helpers used across the simulator and evaluation code."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["OnlineStats", "ewma", "percentile_summary"]


class OnlineStats:
    """Numerically stable online mean/variance (Welford's algorithm).

    Used by simulator monitors to summarise queue occupancy and delays
    without storing every sample.
    """

    def __init__(self):
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values) -> None:
        """Incorporate an iterable of observations."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        return self._m2 / self._count if self._count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def __repr__(self) -> str:
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def ewma(values, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average of a 1-D sequence.

    ``out[0] = values[0]`` and
    ``out[t] = alpha * values[t] + (1 - alpha) * out[t-1]``.

    This is the baseline predictor used in Table 1 of the paper
    (with ``alpha = 0.01``).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("ewma expects a 1-D sequence")
    out = np.empty_like(array)
    if array.size == 0:
        return out
    out[0] = array[0]
    for index in range(1, array.size):
        out[index] = alpha * array[index] + (1.0 - alpha) * out[index - 1]
    return out


@dataclass
class PercentileSummary:
    """Container for a distribution summary."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    max: float
    extras: dict = field(default_factory=dict)


def percentile_summary(values) -> PercentileSummary:
    """Summarise a sample with the percentiles the paper reports (§4 fn. 6)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return PercentileSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return PercentileSummary(
        count=int(array.size),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        p999=float(np.percentile(array, 99.9)),
        max=float(array.max()),
    )
