"""Tests for the content-addressed artifact store.

Covers the ISSUE's acceptance criteria: checkpoint round-trips are
bit-for-bit, same-spec lookups hit, changed seed/window lookups miss,
and a second context with the same spec never re-simulates or
re-trains.
"""

import numpy as np
import pytest

import repro.core.pipeline as pipeline_module
from repro.api import ArtifactStore, Predictor
from repro.api.store import bundle_key, finetuned_key, pretrained_key, traces_key
from repro.core.model import NTTConfig, NTTForDelay
from repro.core.pipeline import ExperimentContext, get_scale
from repro.core.pretrain import TrainSettings, pretrain
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind, generate_traces
from repro.nn.serialize import load_checkpoint, save_checkpoint

FAST = TrainSettings(epochs=1, batch_size=32, patience=None)


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture(scope="module")
def smoke_pretrain(smoke_bundle):
    """One tiny pre-training run shared by the round-trip tests."""
    return pretrain(NTTConfig.smoke(), smoke_bundle, settings=FAST)


class TestGenericAccess:
    def test_unknown_kind_rejected(self, store):
        with pytest.raises(ValueError, match="bundles"):
            store.path("models", "abc")

    def test_get_missing_returns_none(self, store):
        assert store.get("bundles", "missing") is None

    def test_summary_counts_files(self, store, smoke_bundle):
        store.put_bundle("k1", smoke_bundle)
        summary = store.summary()
        assert summary["bundles"]["count"] == 1
        assert summary["bundles"]["bytes"] > 0

    def test_clear(self, store, smoke_bundle):
        store.put_bundle("k1", smoke_bundle)
        assert store.clear() == 1
        assert store.keys("bundles") == []


class TestBundleRoundTrip:
    def test_arrays_and_metadata_survive(self, store, smoke_bundle):
        store.put_bundle("key", smoke_bundle)
        restored = store.get_bundle("key")
        for split in ("train", "val", "test"):
            original = getattr(smoke_bundle, split)
            loaded = getattr(restored, split)
            assert np.array_equal(original.features, loaded.features)
            assert np.array_equal(original.receiver, loaded.receiver)
            assert np.array_equal(original.delay_target, loaded.delay_target)
            assert np.array_equal(
                original.mct_target, loaded.mct_target, equal_nan=True
            )
            assert np.array_equal(original.message_size, loaded.message_size)
            assert np.array_equal(original.mct_seq, loaded.mct_seq, equal_nan=True)
            assert np.array_equal(original.end_seq, loaded.end_seq)
        assert restored.receiver_index == smoke_bundle.receiver_index
        assert restored.scenario == smoke_bundle.scenario
        assert restored.window_config == smoke_bundle.window_config
        assert restored.n_packets == smoke_bundle.n_packets
        assert restored.name == smoke_bundle.name


class TestCheckpointRoundTrip:
    def test_save_get_load_is_bit_for_bit(self, store, smoke_bundle, smoke_pretrain):
        """save_checkpoint -> ArtifactStore.get -> load_checkpoint must
        reproduce identical predictions."""
        key = "roundtrip"
        save_checkpoint(
            smoke_pretrain.model, store.path("checkpoints", key), metadata={"x": 1}
        )
        path = store.get("checkpoints", key)
        assert path is not None

        fresh = NTTForDelay(NTTConfig.smoke())
        metadata = load_checkpoint(fresh, path)
        assert metadata == {"x": 1}

        test = smoke_bundle.test
        original = Predictor(smoke_pretrain.model, smoke_pretrain.pipeline)
        restored = Predictor(fresh, smoke_pretrain.pipeline)
        assert np.array_equal(
            original.predict_dataset(test), restored.predict_dataset(test)
        )

    def test_pretrained_result_roundtrip(self, store, smoke_bundle, smoke_pretrain):
        store.put_pretrained("key", smoke_pretrain)
        restored = store.get_pretrained("key")
        assert restored.test_mse_seconds2 == smoke_pretrain.test_mse_seconds2
        assert restored.history.epochs_run == smoke_pretrain.history.epochs_run
        test = smoke_bundle.test
        assert np.array_equal(
            Predictor(smoke_pretrain.model, smoke_pretrain.pipeline).predict_dataset(test),
            Predictor(restored.model, restored.pipeline).predict_dataset(test),
        )


class TestCacheKeys:
    def test_same_inputs_hit(self):
        scenario = ScenarioConfig.smoke(ScenarioKind.PRETRAIN)
        scale = get_scale("smoke")
        assert bundle_key(scenario, scale.window, 1) == bundle_key(
            ScenarioConfig.smoke(ScenarioKind.PRETRAIN), scale.window, 1
        )
        assert pretrained_key(
            scenario, scale.window, 1, NTTConfig.smoke(), FAST
        ) == pretrained_key(scenario, scale.window, 1, NTTConfig.smoke(), FAST)

    def test_changed_seed_misses(self):
        scale = get_scale("smoke")
        assert bundle_key(
            ScenarioConfig.smoke(seed=0), scale.window, 1
        ) != bundle_key(ScenarioConfig.smoke(seed=1), scale.window, 1)

    def test_changed_window_misses(self):
        scenario = ScenarioConfig.smoke()
        scale = get_scale("smoke")
        from repro.datasets.windows import WindowConfig

        assert bundle_key(scenario, scale.window, 1) != bundle_key(
            scenario, WindowConfig(window_len=32, stride=4), 1
        )

    def test_model_and_settings_key_checkpoints(self):
        scenario = ScenarioConfig.smoke()
        scale = get_scale("smoke")
        base = pretrained_key(scenario, scale.window, 1, NTTConfig.smoke(), FAST)
        assert base != pretrained_key(
            scenario, scale.window, 1, NTTConfig.smoke(n_layers=2), FAST
        )
        assert base != pretrained_key(
            scenario, scale.window, 1, NTTConfig.smoke(), FAST.scaled(2)
        )

    def test_artifact_kinds_never_collide(self):
        scenario = ScenarioConfig.smoke()
        scale = get_scale("smoke")
        assert traces_key(scenario, 1) != bundle_key(scenario, scale.window, 1)

    def test_finetuned_key_depends_on_task_and_fraction(self):
        scenario = ScenarioConfig.smoke(ScenarioKind.CASE1)
        base = finetuned_key("abc", scenario, "delay", "decoder_only", None, FAST)
        assert base != finetuned_key("abc", scenario, "mct", "decoder_only", None, FAST)
        assert base != finetuned_key("abc", scenario, "delay", "decoder_only", 0.1, FAST)


class TestStoreBackedContext:
    """The acceptance criterion: a second context with the same spec is
    served from the store — no second simulation or training run."""

    @pytest.fixture
    def fast_scale(self):
        from dataclasses import replace

        scale = get_scale("smoke")
        return replace(scale, pretrain_settings=FAST, finetune_settings=FAST)

    @pytest.fixture
    def counters(self, monkeypatch):
        counts = {"generate_dataset": 0, "pretrain": 0}
        real_generate = pipeline_module.generate_dataset
        real_pretrain = pipeline_module.pretrain

        def counting_generate(*args, **kwargs):
            counts["generate_dataset"] += 1
            return real_generate(*args, **kwargs)

        def counting_pretrain(*args, **kwargs):
            counts["pretrain"] += 1
            return real_pretrain(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "generate_dataset", counting_generate)
        monkeypatch.setattr(pipeline_module, "pretrain", counting_pretrain)
        return counts

    def test_second_context_never_recomputes(self, fast_scale, store, counters):
        first = ExperimentContext(fast_scale, store=store)
        first.bundle(ScenarioKind.PRETRAIN)
        first.pretrained()
        assert counters == {"generate_dataset": 1, "pretrain": 1}

        second = ExperimentContext(fast_scale, store=store)
        bundle = second.bundle(ScenarioKind.PRETRAIN)
        result = second.pretrained()
        assert counters == {"generate_dataset": 1, "pretrain": 1}
        assert len(bundle.train) == len(first.bundle(ScenarioKind.PRETRAIN).train)
        assert result.test_mse_seconds2 == first.pretrained().test_mse_seconds2

    def test_changed_seed_recomputes(self, fast_scale, store, counters):
        ExperimentContext(fast_scale, store=store, seed=0).bundle(ScenarioKind.PRETRAIN)
        ExperimentContext(fast_scale, store=store, seed=1).bundle(ScenarioKind.PRETRAIN)
        assert counters["generate_dataset"] == 2

    def test_changed_window_recomputes(self, fast_scale, store, counters):
        from dataclasses import replace

        from repro.datasets.windows import WindowConfig

        ExperimentContext(fast_scale, store=store).bundle(ScenarioKind.PRETRAIN)
        narrow = replace(fast_scale, window=WindowConfig(window_len=32, stride=4))
        ExperimentContext(narrow, store=store).bundle(ScenarioKind.PRETRAIN)
        assert counters["generate_dataset"] == 2

    def test_storeless_context_still_works(self, fast_scale, counters):
        ExperimentContext(fast_scale).bundle(ScenarioKind.PRETRAIN)
        ExperimentContext(fast_scale).bundle(ScenarioKind.PRETRAIN)
        assert counters["generate_dataset"] == 2


class TestTraces:
    def test_trace_roundtrip(self, store):
        config = ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=7)
        traces = generate_traces(config, n_runs=2)
        key = traces_key(config, 2)
        assert store.get_traces(key, 2) is None
        store.put_traces(key, traces)
        restored = store.get_traces(key, 2)
        assert len(restored) == 2
        for original, loaded in zip(traces, restored):
            assert np.array_equal(original.send_time, loaded.send_time)
            assert np.array_equal(original.delay, loaded.delay)
