"""Prometheus exposition from the serving layer.

Unit tests render ``ServingMetrics.to_prometheus`` against a fake
clock; the end-to-end class negotiates content types against a live
server over loopback.
"""

import http.client
import json

import numpy as np
import pytest

from repro.serve import PredictionServer, ServerConfig, ServerHandle, ServingClient
from repro.serve.metrics import ServingMetrics


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestRendering:
    def make_metrics(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        return metrics, clock

    def test_counters_and_histograms_render(self):
        metrics, clock = self.make_metrics()
        metrics.record_batch(n_requests=2, n_windows=6)
        metrics.record_request(0.004)
        metrics.record_request(0.012, error=True)
        clock.now += 10.0
        text = metrics.to_prometheus()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 2" in text
        assert "serve_errors_total 1" in text
        assert "serve_predictions_total 6" in text
        assert 'serve_batch_windows_bucket{le="8"} 1' in text
        assert "serve_batch_windows_count 1" in text
        assert "# TYPE serve_request_latency_seconds histogram" in text

    def test_derived_gauges_refresh_on_render(self):
        metrics, clock = self.make_metrics()
        metrics.record_batch(n_requests=1, n_windows=4)
        for _ in range(10):
            metrics.record_request(0.002)
        clock.now += 2.0
        text = metrics.to_prometheus()
        assert "serve_uptime_seconds 2" in text
        assert "serve_predictions_per_second 2" in text
        assert 'serve_request_latency_window_seconds{quantile="0.5"} 0.002' in text

    def test_extra_snapshots_are_merged(self):
        metrics, _ = self.make_metrics()
        extra = {
            "counters": {
                "serve.model_loads_total": {
                    "name": "serve.model_loads_total",
                    "labels": {},
                    "value": 3,
                }
            }
        }
        text = metrics.to_prometheus(extra)
        assert "serve_model_loads_total 3" in text

    def test_snapshot_contract_is_untouched(self):
        """The JSON snapshot keys predate the registry rebuild."""
        metrics, clock = self.make_metrics()
        metrics.record_batch(n_requests=1, n_windows=2)
        metrics.record_request(0.001)
        clock.now += 1.0
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 1
        assert snapshot["batch_occupancy"]["<=2"] == 1
        assert snapshot["latency_ms"]["window"] == 1
        json.dumps(snapshot)


@pytest.fixture(scope="module")
def live_server(served_checkpoint):
    config = ServerConfig(
        models=(str(served_checkpoint),), port=0, max_wait_us=1000.0
    )
    with ServerHandle(PredictionServer(config)) as handle:
        yield handle


def _get_metrics(handle, path="/metrics", headers=None):
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), response.read()
    finally:
        conn.close()


class TestContentNegotiation:
    @pytest.fixture(scope="class", autouse=True)
    def traffic(self, live_server, smoke_bundle):
        client = ServingClient(live_server.host, live_server.port)
        test = smoke_bundle.test
        client.predict(test.features[:4], test.receiver[:4])

    def test_default_is_json(self, live_server):
        status, content_type, body = _get_metrics(live_server)
        assert status == 200
        assert content_type == "application/json"
        snapshot = json.loads(body)
        assert snapshot["requests_total"] >= 1
        assert snapshot["model_loads_total"] >= 1

    def test_accept_text_plain_selects_prometheus(self, live_server):
        status, content_type, body = _get_metrics(
            live_server, headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        text = body.decode("utf-8")
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_model_loads_total" in text

    def test_format_query_overrides_accept(self, live_server):
        status, content_type, _ = _get_metrics(
            live_server, path="/metrics?format=prometheus"
        )
        assert content_type.startswith("text/plain")
        status, content_type, body = _get_metrics(
            live_server,
            path="/metrics?format=json",
            headers={"Accept": "text/plain"},
        )
        assert content_type == "application/json"
        json.loads(body)

    def test_prometheus_lines_are_well_formed(self, live_server):
        _, _, body = _get_metrics(live_server, headers={"Accept": "text/plain"})
        for line in body.decode("utf-8").splitlines():
            assert line.startswith("#") or " " in line
            if not line.startswith("#"):
                name_part, value = line.rsplit(" ", 1)
                float(value)  # every sample value parses
