"""Tests for message-size workloads and arrivals."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.workloads import (
    FixedMessageSizes,
    HomaLikeMessageSizes,
    LogNormalMessageSizes,
    ParetoMessageSizes,
    PoissonArrivals,
    UniformMessageSizes,
)


@pytest.fixture
def workload_rng():
    return np.random.default_rng(99)


class TestFixed:
    def test_constant(self, workload_rng):
        dist = FixedMessageSizes(5000)
        assert dist.sample(workload_rng) == 5000
        assert dist.mean() == 5000.0

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            FixedMessageSizes(10)


class TestUniform:
    def test_bounds(self, workload_rng):
        dist = UniformMessageSizes(100, 200)
        samples = dist.sample_many(workload_rng, 500)
        assert samples.min() >= 100 and samples.max() <= 200

    def test_mean(self):
        assert UniformMessageSizes(100, 200).mean() == 150.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformMessageSizes(200, 100)


class TestLogNormal:
    def test_positive_and_clipped(self, workload_rng):
        dist = LogNormalMessageSizes(median_bytes=2000, sigma=1.5, max_bytes=100_000)
        samples = dist.sample_many(workload_rng, 2000)
        assert samples.min() >= dist.min_bytes
        assert samples.max() <= 100_000

    def test_empirical_mean_close_to_analytic(self, workload_rng):
        dist = LogNormalMessageSizes(median_bytes=2000, sigma=0.5)
        samples = dist.sample_many(workload_rng, 20_000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogNormalMessageSizes(median_bytes=-1)


class TestPareto:
    def test_heavy_tail_exists(self, workload_rng):
        dist = ParetoMessageSizes(scale_bytes=1000, alpha=1.5)
        samples = dist.sample_many(workload_rng, 20_000)
        assert samples.max() > 20 * np.median(samples)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(ValueError):
            ParetoMessageSizes(alpha=1.0)

    def test_samples_at_least_scale(self, workload_rng):
        dist = ParetoMessageSizes(scale_bytes=1000, alpha=2.0)
        samples = dist.sample_many(workload_rng, 1000)
        assert samples.min() >= 1000


class TestHomaLike:
    def test_mixture_mean(self, workload_rng):
        dist = HomaLikeMessageSizes()
        samples = dist.sample_many(workload_rng, 50_000)
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.25)

    def test_mostly_small_messages(self, workload_rng):
        dist = HomaLikeMessageSizes()
        samples = dist.sample_many(workload_rng, 10_000)
        assert np.median(samples) < dist.mean()

    def test_tail_fraction_validation(self):
        with pytest.raises(ValueError):
            HomaLikeMessageSizes(tail_fraction=1.5)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_samples_always_valid(self, seed):
        dist = HomaLikeMessageSizes()
        rng = np.random.default_rng(seed)
        size = dist.sample(rng)
        assert dist.min_bytes <= size <= 2_000_000


class TestPoissonArrivals:
    def test_rate_matches_load(self):
        dist = FixedMessageSizes(10_000)
        arrivals = PoissonArrivals(load_bps=8e6, size_distribution=dist)
        # 8 Mbps / (8 * 10 kB) = 100 messages/s.
        assert arrivals.rate_per_second == pytest.approx(100.0)

    def test_empirical_interarrival_mean(self, workload_rng):
        arrivals = PoissonArrivals(load_bps=8e6, size_distribution=FixedMessageSizes(10_000))
        gaps = [arrivals.next_interarrival(workload_rng) for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(0.01, rel=0.1)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, FixedMessageSizes(1000))
