"""Feature normalisation.

Continuous features are z-scored with statistics estimated on the
*pre-training* split and reused everywhere (fine-tuning included): a
fine-tuned model must consume inputs on the scale the encoder was
pre-trained with, exactly like token vocabularies are frozen in NLP.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FeatureScaler"]


class FeatureScaler:
    """Per-column z-score scaler: ``scaled = (x - mean) / std``.

    Columns with (near-)zero variance scale by 1 instead of exploding.
    """

    def __init__(self, mean: np.ndarray | None = None, std: np.ndarray | None = None):
        self.mean = None if mean is None else np.asarray(mean, dtype=np.float64)
        self.std = None if std is None else np.asarray(std, dtype=np.float64)

    @property
    def fitted(self) -> bool:
        return self.mean is not None

    def fit(self, values: np.ndarray) -> "FeatureScaler":
        """Estimate statistics from ``values`` of shape ``(..., n_columns)``."""
        values = np.asarray(values, dtype=np.float64)
        flat = values.reshape(-1, values.shape[-1])
        self.mean = flat.mean(axis=0)
        std = flat.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std = std
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Apply the fitted scaling."""
        self._require_fitted()
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        self._require_fitted()
        return np.asarray(values, dtype=np.float64) * self.std + self.mean

    def column(self, index: int) -> "FeatureScaler":
        """A scaler for a single column (used for scalar targets)."""
        self._require_fitted()
        return FeatureScaler(mean=self.mean[index : index + 1], std=self.std[index : index + 1])

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("FeatureScaler used before fit()")

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        self._require_fitted()
        return {"mean": self.mean.tolist(), "std": self.std.tolist()}

    @classmethod
    def from_dict(cls, payload: dict) -> "FeatureScaler":
        return cls(mean=np.asarray(payload["mean"]), std=np.asarray(payload["std"]))
