"""Cross-module integration and invariant tests.

These exercise whole paths through the stack: simulator physics,
deterministic dataset generation, and the end-to-end training loop.
"""

import numpy as np
import pytest

from repro.datasets.generation import generate_dataset
from repro.datasets.windows import WindowConfig
from repro.netsim.core import Simulator
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind
from repro.netsim.topology import Network
from repro.netsim.units import mbps, milliseconds, serialization_delay
from repro.netsim.packet import Packet


class TestDelayDecomposition:
    """End-to-end delay must equal serialization + propagation (+ queueing)."""

    def test_uncongested_path_delay_exact(self):
        sim = Simulator()
        net = Network(sim)
        a, b, c = net.add_node(), net.add_node(), net.add_node()
        net.add_link(a, b, mbps(10), milliseconds(2), 100)
        net.add_link(b, c, mbps(20), milliseconds(3), 100)
        net.compute_routes()
        received = []
        c.default_handler = lambda packet: received.append(sim.now - packet.send_time)
        a.send(Packet(src=0, dst=2, size=1200))
        sim.run()
        expected = (
            serialization_delay(1200, mbps(10))
            + milliseconds(2)
            + serialization_delay(1200, mbps(20))
            + milliseconds(3)
        )
        assert received[0] == pytest.approx(expected, rel=1e-12)

    def test_queueing_adds_exactly_service_times(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_node(), net.add_node()
        net.add_link(a, b, mbps(12), milliseconds(1), 100)
        net.compute_routes()
        received = []
        b.default_handler = lambda packet: received.append(sim.now - packet.send_time)
        for __ in range(4):
            a.send(Packet(src=0, dst=1, size=1500))
        sim.run()
        service = serialization_delay(1500, mbps(12))
        for position, delay in enumerate(received):
            expected = (position + 1) * service + milliseconds(1)
            assert delay == pytest.approx(expected, rel=1e-12)


class TestDeterminism:
    def test_dataset_generation_bitwise_reproducible(self):
        config = ScenarioConfig.smoke(ScenarioKind.CASE1, seed=21)
        window = WindowConfig(window_len=64, stride=8)
        a = generate_dataset(config, window_config=window, n_runs=1)
        b = generate_dataset(config, window_config=window, n_runs=1)
        assert np.array_equal(a.train.features, b.train.features)
        assert np.array_equal(a.train.delay_target, b.train.delay_target)
        assert np.array_equal(a.test.mct_target, b.test.mct_target, equal_nan=True)

    def test_model_training_reproducible(self, smoke_bundle):
        from repro.core.model import NTTConfig
        from repro.core.pretrain import TrainSettings, pretrain

        settings = TrainSettings(epochs=1, batch_size=32, patience=None, seed=3)
        a = pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)
        b = pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)
        assert a.test_mse_seconds2 == pytest.approx(b.test_mse_seconds2, rel=1e-12)
        for (name_a, val_a), (name_b, val_b) in zip(
            a.model.state_dict().items(), b.model.state_dict().items()
        ):
            assert name_a == name_b
            assert np.allclose(val_a, val_b)


class TestEndToEndLearning:
    def test_pretraining_beats_predicting_the_mean(self, smoke_bundle):
        """Even a briefly trained NTT must beat the trivial mean
        predictor, i.e. achieve MSE below the target variance."""
        from repro.core.model import NTTConfig
        from repro.core.pretrain import TrainSettings, pretrain

        settings = TrainSettings(epochs=6, batch_size=32, lr=1e-3, patience=None)
        result = pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)
        target_variance = float(np.var(smoke_bundle.test.delay_target))
        assert result.test_mse_seconds2 < target_variance

    def test_checkpoint_roundtrip_preserves_predictions(self, smoke_bundle, tmp_path):
        from repro.core.evaluation import predict_delay
        from repro.core.model import NTTConfig, NTTForDelay
        from repro.core.pretrain import TrainSettings, pretrain
        from repro.nn.serialize import load_checkpoint, save_checkpoint

        settings = TrainSettings(epochs=1, batch_size=32, patience=None)
        result = pretrain(NTTConfig.smoke(), smoke_bundle, settings=settings)
        path = tmp_path / "ntt.npz"
        save_checkpoint(result.model, path, metadata={"scale": "smoke"})
        clone = NTTForDelay(NTTConfig.smoke())
        metadata = load_checkpoint(clone, path)
        assert metadata["scale"] == "smoke"
        sample = smoke_bundle.test.subset(np.arange(min(32, len(smoke_bundle.test))))
        original = predict_delay(result.model, result.pipeline, sample)
        restored = predict_delay(clone, result.pipeline, sample)
        assert np.allclose(original, restored)
