"""Tests for the configurable bottleneck queueing discipline (§5)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.netsim.queues import DropTailQueue, REDQueue
from repro.netsim.scenarios import ScenarioConfig, ScenarioKind, build_scenario


def test_unknown_discipline_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(bottleneck_discipline="codel")


def test_default_is_droptail():
    handle = build_scenario(ScenarioConfig.smoke())
    assert type(handle.bottleneck_channel.queue) is DropTailQueue


def test_red_discipline_installs_red_queue():
    config = replace(ScenarioConfig.smoke(), bottleneck_discipline="red")
    handle = build_scenario(config)
    assert isinstance(handle.bottleneck_channel.queue, REDQueue)


def test_red_scenario_runs_and_traces():
    config = replace(
        ScenarioConfig.smoke(ScenarioKind.PRETRAIN, seed=13),
        bottleneck_discipline="red",
    )
    trace = build_scenario(config).run()
    assert len(trace) > 100
    assert np.all(trace.delay > 0)


def test_red_drops_earlier_than_droptail():
    """RED marks congestion before the hard limit, so it drops at least
    as much as drop-tail under the same overloaded workload."""
    droptail = build_scenario(ScenarioConfig.smoke(seed=17))
    droptail.run()
    red = build_scenario(
        replace(ScenarioConfig.smoke(seed=17), bottleneck_discipline="red")
    )
    red.run()
    assert (
        red.bottleneck_channel.queue.stats.dropped
        >= droptail.bottleneck_channel.queue.stats.dropped
    )


def test_red_keeps_queue_shorter():
    droptail = build_scenario(ScenarioConfig.smoke(seed=19))
    droptail.run()
    red = build_scenario(
        replace(ScenarioConfig.smoke(seed=19), bottleneck_discipline="red")
    )
    red.run()
    assert (
        red.bottleneck_channel.queue.stats.max_occupancy
        <= droptail.bottleneck_channel.queue.stats.max_occupancy
    )
